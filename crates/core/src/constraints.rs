//! Caller-supplied placement constraints on a mapping call.
//!
//! The refinement loop's internal [`Constraints`](crate::feedback::Constraints)
//! are *discovered* while mapping; [`MappingConstraints`] are *imposed* from
//! outside, before mapping starts. They are what run-time reconfiguration
//! needs (Weichslgartner et al., "A Design-Time/Run-Time Application Mapping
//! Methodology", 2017): a manager that wants to migrate an application next
//! to its data pins processes to tiles, and one that wants to keep a region
//! free for an arriving application excludes tiles outright.
//!
//! An empty constraint set ([`MappingConstraints::none`]) is the default
//! everywhere and leaves every algorithm's behaviour — including fixed-seed
//! outputs — bit-for-bit unchanged.

use crate::mapping::Mapping;
use rtsm_app::ProcessId;
use rtsm_platform::TileId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Placement constraints a caller imposes on one mapping call: pinned
/// process→tile assignments and tiles excluded from use (see the
/// [module docs](self)).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MappingConstraints {
    pinned: BTreeMap<ProcessId, TileId>,
    excluded_tiles: BTreeSet<TileId>,
}

impl MappingConstraints {
    /// No constraints — every algorithm behaves exactly as unconstrained.
    pub fn none() -> Self {
        MappingConstraints::default()
    }

    /// Requires `process` to be placed on exactly `tile` (builder style).
    /// The tile must still host a matching implementation kind and have the
    /// resources; otherwise mapping fails rather than violating the pin.
    #[must_use]
    pub fn pin(mut self, process: ProcessId, tile: TileId) -> Self {
        self.pinned.insert(process, tile);
        self
    }

    /// Forbids every process of the mapped application from using `tile`
    /// (builder style). A pin to an excluded tile is unsatisfiable.
    #[must_use]
    pub fn exclude_tile(mut self, tile: TileId) -> Self {
        self.excluded_tiles.insert(tile);
        self
    }

    /// The tile `process` is pinned to, if any.
    pub fn pinned_tile(&self, process: ProcessId) -> Option<TileId> {
        self.pinned.get(&process).copied()
    }

    /// True if `tile` is excluded for all processes.
    pub fn is_tile_excluded(&self, tile: TileId) -> bool {
        self.excluded_tiles.contains(&tile)
    }

    /// True if placing `process` on `tile` is allowed: the tile is not
    /// excluded, and any pin on the process names this tile.
    pub fn allows(&self, process: ProcessId, tile: TileId) -> bool {
        !self.excluded_tiles.contains(&tile)
            && self
                .pinned
                .get(&process)
                .is_none_or(|pinned| *pinned == tile)
    }

    /// True if no constraint has been imposed. Algorithms use this to take
    /// their unconstrained fast path.
    pub fn is_empty(&self) -> bool {
        self.pinned.is_empty() && self.excluded_tiles.is_empty()
    }

    /// Number of imposed constraints (pins plus exclusions).
    pub fn len(&self) -> usize {
        self.pinned.len() + self.excluded_tiles.len()
    }

    /// True if every assignment of `mapping` satisfies these constraints —
    /// the invariant every constraint-aware algorithm upholds on success.
    pub fn satisfied_by(&self, mapping: &Mapping) -> bool {
        mapping.assignments().all(|(p, a)| self.allows(p, a.tile))
            && self
                .pinned
                .iter()
                .all(|(p, t)| mapping.assignment(*p).is_none_or(|a| a.tile == *t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::from_index(i)
    }

    fn t(i: usize) -> TileId {
        TileId::from_index(i)
    }

    #[test]
    fn empty_allows_everything() {
        let c = MappingConstraints::none();
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
        assert!(c.allows(p(0), t(0)));
        assert!(c.satisfied_by(&Mapping::new()));
    }

    #[test]
    fn pin_restricts_to_one_tile() {
        let c = MappingConstraints::none().pin(p(0), t(2));
        assert!(c.allows(p(0), t(2)));
        assert!(!c.allows(p(0), t(1)));
        assert!(c.allows(p(1), t(1)), "other processes are unconstrained");
        assert_eq!(c.pinned_tile(p(0)), Some(t(2)));
    }

    #[test]
    fn excluded_tile_blocks_all_processes() {
        let c = MappingConstraints::none().exclude_tile(t(3));
        assert!(c.is_tile_excluded(t(3)));
        assert!(!c.allows(p(0), t(3)));
        assert!(!c.allows(p(7), t(3)));
        assert!(c.allows(p(0), t(2)));
    }

    #[test]
    fn pin_to_excluded_tile_is_unsatisfiable() {
        let c = MappingConstraints::none()
            .pin(p(0), t(3))
            .exclude_tile(t(3));
        assert!(!c.allows(p(0), t(3)));
    }

    #[test]
    fn satisfied_by_checks_assignments() {
        let c = MappingConstraints::none()
            .pin(p(0), t(1))
            .exclude_tile(t(2));
        let mut ok = Mapping::new();
        ok.assign(p(0), 0, t(1));
        ok.assign(p(1), 0, t(0));
        assert!(c.satisfied_by(&ok));
        let mut pinned_elsewhere = ok.clone();
        pinned_elsewhere.assign(p(0), 0, t(0));
        assert!(!c.satisfied_by(&pinned_elsewhere));
        let mut on_excluded = ok.clone();
        on_excluded.assign(p(1), 0, t(2));
        assert!(!c.satisfied_by(&on_excluded));
    }
}
