//! Renderers for the paper's tables and a human-readable mapping report.

use crate::algorithm::MappingOutcome;
use crate::trace::Step2Trace;
use rtsm_app::{ApplicationSpec, ProcessId};
use rtsm_platform::{Platform, TileId, TileKind};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Renders the paper's Table 1: the implementation library.
pub fn render_table1(spec: &ApplicationSpec) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<22} {:<9} {:<22} {:<22} {:<20} {:>12}",
        "Process", "PE type", "Input [token]", "Output [token]", "WCET [cc]", "E [nJ/sym]"
    );
    let _ = writeln!(out, "{}", "-".repeat(112));
    for (pid, process) in spec.graph.stream_processes() {
        for implementation in spec.library.impls_for(pid) {
            let input = implementation
                .inputs
                .first()
                .map(|p| p.to_string())
                .unwrap_or_else(|| "-".into());
            let output = implementation
                .outputs
                .first()
                .map(|p| p.to_string())
                .unwrap_or_else(|| "-".into());
            let _ = writeln!(
                out,
                "{:<22} {:<9} {:<22} {:<22} {:<20} {:>12}",
                process.name,
                implementation.tile_kind.to_string(),
                input,
                output,
                implementation.wcet.to_string(),
                implementation.energy_pj_per_period / 1000
            );
        }
    }
    out
}

/// Column layout for [`render_table2`]: the tiles that host processes,
/// grouped by kind in (kind, id) order.
fn table2_columns(platform: &Platform, trace: &Step2Trace) -> Vec<(TileKind, Vec<TileId>)> {
    let mut by_kind: BTreeMap<TileKind, Vec<TileId>> = BTreeMap::new();
    for (_, tile) in &trace.initial_assignment {
        by_kind
            .entry(platform.tile(*tile).kind)
            .or_default()
            .push(*tile);
    }
    for event in &trace.events {
        for (_, tile) in &event.assignment {
            let v = by_kind.entry(platform.tile(*tile).kind).or_default();
            if !v.contains(tile) {
                v.push(*tile);
            }
        }
    }
    let mut out: Vec<(TileKind, Vec<TileId>)> = by_kind.into_iter().collect();
    for (_, tiles) in &mut out {
        tiles.sort_unstable();
        tiles.dedup();
    }
    out
}

fn row_cells(
    spec: &ApplicationSpec,
    columns: &[(TileKind, Vec<TileId>)],
    assignment: &[(ProcessId, TileId)],
) -> Vec<String> {
    let on_tile: BTreeMap<TileId, ProcessId> = assignment.iter().map(|(p, t)| (*t, *p)).collect();
    let mut cells = Vec::new();
    for (_, tiles) in columns {
        for tile in tiles {
            cells.push(match on_tile.get(tile) {
                Some(p) => spec.graph.process(*p).short_name.clone(),
                None => "-".into(),
            });
        }
    }
    cells
}

/// Renders the paper's Table 2: the step-2 processor-assignment iterations.
///
/// The trailing all-revert pass (every evaluation after the last kept one)
/// is collapsed into the paper's closing "No further choices" row.
pub fn render_table2(spec: &ApplicationSpec, platform: &Platform, trace: &Step2Trace) -> String {
    let columns = table2_columns(platform, trace);
    let mut out = String::new();

    // Header: group titles over numbered tile columns.
    let cell = 10usize;
    let _ = write!(out, "{:<6}", "Iter.");
    for (kind, tiles) in &columns {
        let width = cell * tiles.len();
        let _ = write!(out, "{:<width$}", kind.to_string(), width = width);
    }
    let _ = writeln!(out, "{:>6}  Remark", "Cost");
    let _ = write!(out, "{:<6}", "");
    for (_, tiles) in &columns {
        for (i, _) in tiles.iter().enumerate() {
            let _ = write!(out, "{:<cell$}", i + 1);
        }
    }
    let _ = writeln!(out);
    let total_width = 6 + columns.iter().map(|(_, t)| t.len() * cell).sum::<usize>() + 40;
    let _ = writeln!(out, "{}", "-".repeat(total_width));

    let print_row = |label: &str, cells: &[String], cost: u64, remark: &str, out: &mut String| {
        let _ = write!(out, "{label:<6}");
        for c in cells {
            let _ = write!(out, "{c:<cell$}");
        }
        let _ = writeln!(out, "{cost:>6}  {remark}");
    };

    print_row(
        "-",
        &row_cells(spec, &columns, &trace.initial_assignment),
        trace.initial_cost,
        "Initial (greedy) assignment",
        &mut out,
    );

    let last_kept = trace.events.iter().rposition(|e| e.kept);
    let shown = match last_kept {
        Some(k) => k + 1,
        None => 0,
    };
    for (i, event) in trace.events.iter().take(shown).enumerate() {
        let remark = if event.kept {
            "Improvement, keep"
        } else {
            "No improvement, revert"
        };
        print_row(
            &format!("{}", i + 1),
            &row_cells(spec, &columns, &event.assignment),
            event.cost,
            remark,
            &mut out,
        );
    }
    let _ = writeln!(out, "{:<6}No further choices", "");
    out
}

/// Renders a human-readable summary of a mapping result.
pub fn render_summary(
    result: &MappingOutcome,
    spec: &ApplicationSpec,
    platform: &Platform,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Application: {}", spec.name);
    let _ = writeln!(
        out,
        "Feasible: {} (attempt {} of refinement loop)",
        result.feasible, result.attempts
    );
    let _ = writeln!(out, "Placements:");
    for (pid, a) in result.mapping.assignments() {
        let implementation = &spec.library.impls_for(pid)[a.impl_index];
        let _ = writeln!(
            out,
            "  {:<24} -> {:<10} ({})",
            spec.graph.process(pid).name,
            platform.tile(a.tile).name,
            implementation.name
        );
    }
    let _ = writeln!(out, "Routes:");
    for (cid, route) in result.mapping.routes() {
        let ch = spec.graph.channel(cid);
        let _ = writeln!(
            out,
            "  {:?}: {} tokens/period over {} hops",
            cid,
            ch.tokens_per_period,
            route.hops()
        );
    }
    let _ = writeln!(
        out,
        "Communication cost (Σ Manhattan): {}",
        result.communication_hops
    );
    let _ = writeln!(
        out,
        "Energy: {:.1} nJ/period",
        result.energy_pj as f64 / 1000.0
    );
    let _ = writeln!(out, "Buffers (B_i):");
    for b in &result.buffers {
        let _ = writeln!(
            out,
            "  channel {:?} @ {}: {} words",
            b.channel,
            platform.tile(b.tile).name,
            b.capacity_words
        );
    }
    let _ = writeln!(
        out,
        "Achieved period: {} ps over {} iterations (required {} ps)",
        result.achieved_period.0, result.achieved_period.1, spec.qos.period_ps
    );
    if let Some(lat) = result.latency_ps {
        let _ = writeln!(out, "Latency: {lat} ps");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::{MapperConfig, SpatialMapper};
    use rtsm_app::hiperlan2::{hiperlan2_receiver, Hiperlan2Mode};
    use rtsm_platform::paper::paper_platform;

    fn mapped() -> (ApplicationSpec, Platform, MappingOutcome) {
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let platform = paper_platform();
        let result = SpatialMapper::new(MapperConfig::default())
            .map(&spec, &platform, &platform.initial_state())
            .unwrap();
        (spec, platform, result)
    }

    #[test]
    fn table1_lists_all_eight_implementations() {
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let t = render_table1(&spec);
        assert_eq!(t.matches("ARM").count(), 4);
        assert_eq!(t.matches("MONTIUM").count(), 4);
        assert!(t.contains("⟨18^18⟩"));
        assert!(t.contains("275"));
    }

    #[test]
    fn table2_matches_paper_structure() {
        let (spec, platform, result) = mapped();
        let trace = &result
            .trace
            .as_ref()
            .unwrap()
            .successful_attempt()
            .unwrap()
            .step2;
        let table = render_table2(&spec, &platform, trace);
        // The paper's remarks, in order.
        let lines: Vec<&str> = table.lines().collect();
        assert!(table.contains("Initial (greedy) assignment"));
        assert!(table.contains("No improvement, revert"));
        assert!(table.contains("No further choices"));
        assert_eq!(table.matches("Improvement, keep").count(), 2);
        // Cost column sequence 11, 11, 9, 7.
        let costs: Vec<&str> = lines
            .iter()
            .filter(|l| l.contains("11  ") || l.contains(" 9  ") || l.contains(" 7  "))
            .copied()
            .collect();
        assert!(costs.len() >= 4, "table:\n{table}");
        // Short names used.
        assert!(table.contains("Pfx.rem."));
        assert!(table.contains("Inv.OFDM"));
    }

    #[test]
    fn summary_mentions_placements_and_energy() {
        let (spec, platform, result) = mapped();
        let s = render_summary(&result, &spec, &platform);
        assert!(s.contains("MONTIUM2"));
        assert!(s.contains("nJ/period"));
        assert!(s.contains("Achieved period"));
    }
}
