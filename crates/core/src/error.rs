//! Error type of the spatial mapper.

use crate::feedback::Feedback;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors terminating a mapping attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// The application specification failed validation.
    InvalidSpec(rtsm_app::AppModelError),
    /// The platform has no stream-input (`AdcSource`) or stream-output
    /// (`Sink`) tile but the application uses stream endpoints.
    NoStreamEndpoint {
        /// Which endpoint kind is missing.
        which: &'static str,
    },
    /// No feasible mapping was found within the refinement budget.
    NoFeasibleMapping {
        /// Refinement attempts performed.
        attempts: usize,
        /// Feedback of the final failed attempt.
        last_feedback: Vec<Feedback>,
    },
    /// A process has no viable implementation under the current constraints
    /// (step 1 dead end with no remaining alternatives to exclude).
    Unmappable {
        /// Name of the process that could not be placed.
        process: String,
    },
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::InvalidSpec(e) => write!(f, "invalid application specification: {e}"),
            MapError::NoStreamEndpoint { which } => {
                write!(f, "platform lacks a {which} tile for the stream endpoint")
            }
            MapError::NoFeasibleMapping {
                attempts,
                last_feedback,
            } => write!(
                f,
                "no feasible mapping after {attempts} refinement attempts \
                 ({} feedback items)",
                last_feedback.len()
            ),
            MapError::Unmappable { process } => {
                write!(f, "process `{process}` has no viable implementation")
            }
        }
    }
}

/// The serializable discriminant of [`MapError`]: which *kind* of failure
/// terminated the attempt, without the attempt-specific payload. This is
/// what rejection histograms and persisted scenario/simulation reports key
/// on, so scripted and simulated runs report comparable data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MapErrorKind {
    /// See [`MapError::InvalidSpec`].
    InvalidSpec,
    /// See [`MapError::NoStreamEndpoint`].
    NoStreamEndpoint,
    /// See [`MapError::NoFeasibleMapping`].
    NoFeasibleMapping,
    /// See [`MapError::Unmappable`].
    Unmappable,
}

impl fmt::Display for MapErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let label = match self {
            MapErrorKind::InvalidSpec => "invalid-spec",
            MapErrorKind::NoStreamEndpoint => "no-stream-endpoint",
            MapErrorKind::NoFeasibleMapping => "no-feasible-mapping",
            MapErrorKind::Unmappable => "unmappable",
        };
        f.write_str(label)
    }
}

impl MapError {
    /// This error's [`MapErrorKind`] discriminant.
    pub fn kind(&self) -> MapErrorKind {
        match self {
            MapError::InvalidSpec(_) => MapErrorKind::InvalidSpec,
            MapError::NoStreamEndpoint { .. } => MapErrorKind::NoStreamEndpoint,
            MapError::NoFeasibleMapping { .. } => MapErrorKind::NoFeasibleMapping,
            MapError::Unmappable { .. } => MapErrorKind::Unmappable,
        }
    }
}

impl std::error::Error for MapError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MapError::InvalidSpec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<rtsm_app::AppModelError> for MapError {
    fn from(e: rtsm_app::AppModelError) -> Self {
        MapError::InvalidSpec(e)
    }
}
