//! Error type of the spatial mapper.

use crate::feedback::Feedback;
use std::fmt;

/// Errors terminating a mapping attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// The application specification failed validation.
    InvalidSpec(rtsm_app::AppModelError),
    /// The platform has no stream-input (`AdcSource`) or stream-output
    /// (`Sink`) tile but the application uses stream endpoints.
    NoStreamEndpoint {
        /// Which endpoint kind is missing.
        which: &'static str,
    },
    /// No feasible mapping was found within the refinement budget.
    NoFeasibleMapping {
        /// Refinement attempts performed.
        attempts: usize,
        /// Feedback of the final failed attempt.
        last_feedback: Vec<Feedback>,
    },
    /// A process has no viable implementation under the current constraints
    /// (step 1 dead end with no remaining alternatives to exclude).
    Unmappable {
        /// Name of the process that could not be placed.
        process: String,
    },
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::InvalidSpec(e) => write!(f, "invalid application specification: {e}"),
            MapError::NoStreamEndpoint { which } => {
                write!(f, "platform lacks a {which} tile for the stream endpoint")
            }
            MapError::NoFeasibleMapping {
                attempts,
                last_feedback,
            } => write!(
                f,
                "no feasible mapping after {attempts} refinement attempts \
                 ({} feedback items)",
                last_feedback.len()
            ),
            MapError::Unmappable { process } => {
                write!(f, "process `{process}` has no viable implementation")
            }
        }
    }
}

impl std::error::Error for MapError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MapError::InvalidSpec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<rtsm_app::AppModelError> for MapError {
    fn from(e: rtsm_app::AppModelError) -> Self {
        MapError::InvalidSpec(e)
    }
}
