//! The mapping data structure: what the spatial mapper produces.

use rtsm_app::{ApplicationSpec, Endpoint, KpnChannelId, ProcessId};
use rtsm_platform::{EnergyModel, Path, Platform, TileId, TileKind};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One process's binding: which implementation and which tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    /// Index into the process's implementation list
    /// (`spec.library.impls_for(process)`).
    pub impl_index: usize,
    /// Tile hosting the implementation.
    pub tile: TileId,
}

/// A channel's realisation on the interconnect.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouteBinding {
    /// Producer and consumer share a tile: local memory, no NoC traffic.
    SameTile,
    /// A guaranteed-throughput NoC connection.
    Path(Path),
}

impl RouteBinding {
    /// Router-to-router hops of this binding.
    pub fn hops(&self) -> u32 {
        match self {
            RouteBinding::SameTile => 0,
            RouteBinding::Path(p) => p.hops(),
        }
    }
}

/// A (possibly partial) spatial mapping: process → (implementation, tile)
/// and channel → route.
///
/// `BTreeMap`s keep iteration deterministic, which the paper-exact traces
/// rely on.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mapping {
    assignments: BTreeMap<ProcessId, Assignment>,
    routes: BTreeMap<KpnChannelId, RouteBinding>,
}

impl Mapping {
    /// An empty mapping.
    pub fn new() -> Self {
        Mapping::default()
    }

    /// Binds `process` to (`impl_index`, `tile`), replacing any previous
    /// binding.
    pub fn assign(&mut self, process: ProcessId, impl_index: usize, tile: TileId) {
        self.assignments
            .insert(process, Assignment { impl_index, tile });
    }

    /// The binding of `process`, if any.
    pub fn assignment(&self, process: ProcessId) -> Option<Assignment> {
        self.assignments.get(&process).copied()
    }

    /// Removes `process`'s binding (used by backtracking searches).
    pub fn unassign(&mut self, process: ProcessId) -> Option<Assignment> {
        self.assignments.remove(&process)
    }

    /// Iterates over `(process, assignment)` in process-id order.
    pub fn assignments(&self) -> impl Iterator<Item = (ProcessId, Assignment)> + '_ {
        self.assignments.iter().map(|(p, a)| (*p, *a))
    }

    /// Number of bound processes.
    pub fn n_assigned(&self) -> usize {
        self.assignments.len()
    }

    /// Binds `channel` to `route`.
    pub fn bind_route(&mut self, channel: KpnChannelId, route: RouteBinding) {
        self.routes.insert(channel, route);
    }

    /// The route of `channel`, if bound.
    pub fn route(&self, channel: KpnChannelId) -> Option<&RouteBinding> {
        self.routes.get(&channel)
    }

    /// Iterates over `(channel, route)` in channel-id order.
    pub fn routes(&self) -> impl Iterator<Item = (KpnChannelId, &RouteBinding)> {
        self.routes.iter().map(|(c, r)| (*c, r))
    }

    /// Removes all routes (step 2 invalidates step 3's work).
    pub fn clear_routes(&mut self) {
        self.routes.clear();
    }

    /// The tile realising `endpoint`: the assigned tile for processes, the
    /// platform's first `AdcSource` / `Sink` tile for stream endpoints.
    pub fn endpoint_tile(&self, platform: &Platform, endpoint: Endpoint) -> Option<TileId> {
        match endpoint {
            Endpoint::Process(p) => self.assignment(p).map(|a| a.tile),
            Endpoint::StreamInput => platform
                .tiles_of_kind(TileKind::AdcSource)
                .map(|(id, _)| id)
                .next(),
            Endpoint::StreamOutput => platform
                .tiles_of_kind(TileKind::Sink)
                .map(|(id, _)| id)
                .next(),
        }
    }

    /// The paper's step-2 cost: the sum over data-stream channels of the
    /// Manhattan distance between the endpoints' tiles (Table 2's cost
    /// column). Channels with unassigned endpoints are skipped.
    pub fn communication_hops(&self, spec: &ApplicationSpec, platform: &Platform) -> u32 {
        spec.graph
            .stream_channels()
            .filter_map(|(_, ch)| {
                let a = self.endpoint_tile(platform, ch.src)?;
                let b = self.endpoint_tile(platform, ch.dst)?;
                Some(platform.manhattan(a, b))
            })
            .sum()
    }

    /// Total energy per application period in picojoules: chosen
    /// implementations' processing energy plus communication energy over
    /// the *routed* paths (falling back to Manhattan distance for unrouted
    /// channels, as steps 1–2 estimate it).
    pub fn energy_pj(
        &self,
        spec: &ApplicationSpec,
        platform: &Platform,
        model: &EnergyModel,
    ) -> u64 {
        let processing: u64 = self
            .assignments()
            .map(|(p, a)| spec.library.impls_for(p)[a.impl_index].energy_pj_per_period)
            .sum();
        let communication: u64 = spec
            .graph
            .stream_channels()
            .filter_map(|(id, ch)| {
                let hops = match self.route(id) {
                    Some(binding) => binding.hops(),
                    None => {
                        let a = self.endpoint_tile(platform, ch.src)?;
                        let b = self.endpoint_tile(platform, ch.dst)?;
                        platform.manhattan(a, b)
                    }
                };
                Some(model.channel_energy_pj(ch.tokens_per_period, hops))
            })
            .sum();
        processing + communication
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtsm_app::hiperlan2::{hiperlan2_receiver, Hiperlan2Mode};
    use rtsm_platform::paper::paper_platform;

    fn paper_final_mapping() -> (rtsm_app::ApplicationSpec, Platform, Mapping) {
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let platform = paper_platform();
        let mut m = Mapping::new();
        let p = |n: &str| spec.graph.process_by_name(n).unwrap();
        let t = |n: &str| platform.tile_by_name(n).unwrap();
        // The paper's final assignment (Table 2, last row): impl index 0 is
        // ARM, 1 is MONTIUM (library registration order).
        m.assign(p("Prefix removal"), 0, t("ARM2"));
        m.assign(p("Freq. off. correction"), 0, t("ARM1"));
        m.assign(p("Inverse OFDM"), 1, t("MONTIUM2"));
        m.assign(p("Remainder"), 1, t("MONTIUM1"));
        (spec, platform, m)
    }

    #[test]
    fn paper_final_mapping_costs_seven() {
        let (spec, platform, m) = paper_final_mapping();
        assert_eq!(m.communication_hops(&spec, &platform), 7);
    }

    #[test]
    fn initial_greedy_mapping_costs_eleven() {
        let (spec, platform, mut m) = paper_final_mapping();
        let p = |n: &str| spec.graph.process_by_name(n).unwrap();
        let t = |n: &str| platform.tile_by_name(n).unwrap();
        m.assign(p("Prefix removal"), 0, t("ARM1"));
        m.assign(p("Freq. off. correction"), 0, t("ARM2"));
        m.assign(p("Inverse OFDM"), 1, t("MONTIUM1"));
        m.assign(p("Remainder"), 1, t("MONTIUM2"));
        assert_eq!(m.communication_hops(&spec, &platform), 11);
    }

    #[test]
    fn energy_prefers_montium_and_locality() {
        let (spec, platform, m) = paper_final_mapping();
        let model = EnergyModel::default();
        let e = m.energy_pj(&spec, &platform, &model);
        // Processing: 60+62 (ARM) + 143+76 (MONTIUM) = 341 nJ, plus
        // communication: strictly more than processing alone.
        let processing = 60_000 + 62_000 + 143_000 + 76_000;
        assert!(e > processing);
        // All-ARM processing alone would cost 60+62+275+140 = 537 nJ; the
        // heterogeneous mapping with communication still wins.
        assert!(e < 537_000);
    }

    #[test]
    fn partial_mapping_skips_unassigned() {
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let platform = paper_platform();
        let m = Mapping::new();
        // Only the A/D→Pfx and Rem→Sink channels have stream endpoints, but
        // their process ends are unassigned: cost is 0.
        assert_eq!(m.communication_hops(&spec, &platform), 0);
        assert_eq!(m.n_assigned(), 0);
    }

    #[test]
    fn route_binding_lifecycle() {
        let (spec, _platform, mut m) = paper_final_mapping();
        let ch = spec.graph.stream_channels().next().unwrap().0;
        m.bind_route(ch, RouteBinding::SameTile);
        assert_eq!(m.route(ch), Some(&RouteBinding::SameTile));
        m.clear_routes();
        assert!(m.route(ch).is_none());
    }
}
