//! Feedback records driving iterative refinement.
//!
//! "If any step fails to find a satisfactory result, it immediately
//! generates feedback so that 'higher' steps may generate a more suitable
//! result." (§3.) Feedback items become *constraints* on the next attempt:
//! excluded implementations and forbidden (process, tile) pairs.

use rtsm_app::{KpnChannelId, ProcessId};
use rtsm_platform::TileId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A single feedback item produced by a failing step.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Feedback {
    /// Step 4 found this implementation choice to be the throughput
    /// bottleneck (or step 1 could not place it): do not choose it again.
    ExcludeImplementation {
        /// The affected process.
        process: ProcessId,
        /// Index into the process's implementation list.
        impl_index: usize,
    },
    /// Step 3 or 4 implicates this placement: do not put `process` on
    /// `tile` again.
    ForbidTile {
        /// The affected process.
        process: ProcessId,
        /// The forbidden tile.
        tile: TileId,
    },
    /// Step 3 could not route this channel (diagnostic; refinement reacts
    /// by forbidding the producer's tile).
    RouteFailed {
        /// The unroutable channel.
        channel: KpnChannelId,
    },
    /// Step 4's buffer allocation exceeded the consumer tile's memory.
    BufferOverflow {
        /// The tile whose memory was exhausted.
        tile: TileId,
        /// Bytes that would have been needed.
        needed_bytes: u64,
    },
    /// Step 4's dataflow analysis rejected the mapping outright.
    Infeasible {
        /// Human-readable diagnosis.
        detail: String,
    },
}

/// Accumulated constraints for a refinement attempt: the feedback-derived
/// exclusions plus any caller-imposed
/// [`MappingConstraints`](crate::constraints::MappingConstraints), folded
/// into one query surface so steps 1–2 consult a single oracle.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Constraints {
    excluded_impls: BTreeSet<(ProcessId, usize)>,
    forbidden_tiles: BTreeSet<(ProcessId, TileId)>,
    external: crate::constraints::MappingConstraints,
}

impl Constraints {
    /// No constraints.
    pub fn new() -> Self {
        Constraints::default()
    }

    /// An empty feedback set layered over caller-imposed `external`
    /// constraints: pins and tile exclusions hold for every refinement
    /// attempt, while feedback accumulates on top as usual.
    pub fn with_external(external: crate::constraints::MappingConstraints) -> Self {
        Constraints {
            external,
            ..Constraints::default()
        }
    }

    /// True if (`process`, `impl_index`) has been excluded.
    pub fn is_impl_excluded(&self, process: ProcessId, impl_index: usize) -> bool {
        self.excluded_impls.contains(&(process, impl_index))
    }

    /// True if placing `process` on `tile` has been forbidden — by absorbed
    /// feedback or by the external constraints (excluded tile, or a pin on
    /// the process naming a different tile).
    pub fn is_tile_forbidden(&self, process: ProcessId, tile: TileId) -> bool {
        self.forbidden_tiles.contains(&(process, tile)) || !self.external.allows(process, tile)
    }

    /// The tile `process` is externally pinned to, if any. A pinned
    /// process can never move or swap (every other tile is forbidden for
    /// it), so step 2 skips its candidate generation outright instead of
    /// letting the oracle reject each candidate one by one.
    pub fn pinned_tile(&self, process: ProcessId) -> Option<TileId> {
        self.external.pinned_tile(process)
    }

    /// Folds a feedback item into the constraint set. Returns `true` if the
    /// constraint set changed (no change ⇒ the feedback is not actionable
    /// and refinement should stop rather than loop).
    pub fn absorb(&mut self, feedback: &Feedback) -> bool {
        match feedback {
            Feedback::ExcludeImplementation {
                process,
                impl_index,
            } => self.excluded_impls.insert((*process, *impl_index)),
            Feedback::ForbidTile { process, tile } => {
                self.forbidden_tiles.insert((*process, *tile))
            }
            // Route/buffer/infeasible items are translated by the mapper
            // into the two actionable forms above; on their own they do not
            // constrain anything.
            Feedback::RouteFailed { .. }
            | Feedback::BufferOverflow { .. }
            | Feedback::Infeasible { .. } => false,
        }
    }

    /// Number of accumulated constraints (feedback-derived plus external).
    pub fn len(&self) -> usize {
        self.excluded_impls.len() + self.forbidden_tiles.len() + self.external.len()
    }

    /// True if no constraints have been accumulated.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_is_idempotent() {
        let mut c = Constraints::new();
        let fb = Feedback::ExcludeImplementation {
            process: ProcessId::from_index(0),
            impl_index: 1,
        };
        assert!(c.absorb(&fb));
        assert!(!c.absorb(&fb), "second absorb changes nothing");
        assert_eq!(c.len(), 1);
        assert!(c.is_impl_excluded(ProcessId::from_index(0), 1));
        assert!(!c.is_impl_excluded(ProcessId::from_index(0), 0));
    }

    #[test]
    fn diagnostics_do_not_constrain() {
        let mut c = Constraints::new();
        assert!(!c.absorb(&Feedback::Infeasible { detail: "x".into() }));
        assert!(c.is_empty());
    }

    #[test]
    fn external_constraints_forbid_through_the_same_oracle() {
        use crate::constraints::MappingConstraints;
        let p0 = ProcessId::from_index(0);
        let p1 = ProcessId::from_index(1);
        let t = |i| TileId::from_index(i);
        let mut c =
            Constraints::with_external(MappingConstraints::none().pin(p0, t(1)).exclude_tile(t(2)));
        assert!(!c.is_empty());
        // The pin forbids every tile but its target for p0 only.
        assert!(!c.is_tile_forbidden(p0, t(1)));
        assert!(c.is_tile_forbidden(p0, t(0)));
        assert!(!c.is_tile_forbidden(p1, t(0)));
        // The exclusion forbids t(2) for everyone.
        assert!(c.is_tile_forbidden(p0, t(2)));
        assert!(c.is_tile_forbidden(p1, t(2)));
        // Feedback layers on top without disturbing the external set.
        assert!(c.absorb(&Feedback::ForbidTile {
            process: p1,
            tile: t(0),
        }));
        assert!(c.is_tile_forbidden(p1, t(0)));
        assert!(!c.is_tile_forbidden(p1, t(1)));
    }
}
