//! Step 2: improve the process-to-tile assignment by local search (§3.2).
//!
//! For a process we either *move* it to the best available tile of the same
//! type or *swap* it with another process on the same tile type; "the sum
//! of all Manhattan distances of the application … can increase or remain
//! the same for any iteration. When this happens, that choice is rejected
//! and another is evaluated" (§4.4).
//!
//! Two search disciplines are provided:
//!
//! * [`Step2Strategy::PaperScan`] — processes are scanned in application
//!   (topological) order; each iteration evaluates the scanned process's
//!   best reassignment, keeps it on strict improvement (restarting the
//!   scan) and reverts it otherwise, de-duplicating already-tried
//!   candidates until a full pass keeps nothing. This regenerates Table 2
//!   row for row.
//! * [`Step2Strategy::BestImprovement`] — classical steepest-descent over
//!   all candidates (the ablation baseline).
//!
//! Candidate tiles are filtered for locally sufficient resources (including
//! NI bandwidth), maintaining adequacy and adherence by construction.

use crate::claims::{claim_for, reservation_of};
use crate::cost::CostModel;
use crate::feedback::Constraints;
use crate::mapping::Mapping;
use crate::trace::{Step2Event, Step2Move, Step2Trace};
use rtsm_app::{ApplicationSpec, ProcessId};
use rtsm_platform::{Platform, PlatformState, TileId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Search discipline for step 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Step2Strategy {
    /// One candidate per iteration in scan order with revert logging — the
    /// paper's published behaviour (Table 2).
    PaperScan,
    /// Steepest descent: apply the globally best candidate per iteration.
    BestImprovement,
}

/// Configuration of step 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Step2Config {
    /// Search discipline.
    pub strategy: Step2Strategy,
    /// Hard cap on candidate evaluations ("a maximum number of
    /// iterations", §3.2).
    pub max_evaluations: usize,
    /// Minimum cost decrease for a candidate to be kept ("a minimum gain
    /// from the current iteration", §3.2).
    pub min_gain: u64,
}

impl Default for Step2Config {
    fn default() -> Self {
        Step2Config {
            strategy: Step2Strategy::PaperScan,
            max_evaluations: 1000,
            min_gain: 1,
        }
    }
}

/// A scored candidate: cost with it applied plus the move itself. The
/// Table-2 snapshot is captured lazily (only when tracing is on and only
/// for the winning candidate), never per evaluation.
type ScoredCandidate = (u64, Step2Move);

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum TriedKey {
    Move(ProcessId, TileId),
    Swap(ProcessId, ProcessId), // ordered pair (min, max)
}

fn swap_key(a: ProcessId, b: ProcessId) -> TriedKey {
    if a <= b {
        TriedKey::Swap(a, b)
    } else {
        TriedKey::Swap(b, a)
    }
}

fn candidate_key(c: &Step2Move) -> TriedKey {
    match c {
        Step2Move::Move { process, to } => TriedKey::Move(*process, *to),
        Step2Move::Swap { a, b } => swap_key(*a, *b),
    }
}

/// One stream channel as step 2 sees it: endpoints plus traffic. Collected
/// once per search into per-process incidence lists so candidate scoring
/// touches only the channels a move can change.
#[derive(Debug, Clone, Copy)]
struct ChannelRef {
    src: rtsm_app::Endpoint,
    dst: rtsm_app::Endpoint,
    tokens_per_period: u64,
}

struct SearchCtx<'a> {
    spec: &'a ApplicationSpec,
    platform: &'a Platform,
    constraints: &'a Constraints,
    cost_model: &'a CostModel,
    /// Channel indices (into `channels`) incident to each process, by
    /// process index.
    incident: Vec<Vec<usize>>,
    channels: Vec<ChannelRef>,
}

impl<'a> SearchCtx<'a> {
    fn new(
        spec: &'a ApplicationSpec,
        platform: &'a Platform,
        constraints: &'a Constraints,
        cost_model: &'a CostModel,
    ) -> Self {
        let mut channels = Vec::new();
        let mut incident = vec![Vec::new(); spec.graph.n_processes()];
        for (_, ch) in spec.graph.stream_channels() {
            let ci = channels.len();
            channels.push(ChannelRef {
                src: ch.src,
                dst: ch.dst,
                tokens_per_period: ch.tokens_per_period,
            });
            if let rtsm_app::Endpoint::Process(p) = ch.src {
                incident[p.index()].push(ci);
            }
            if let rtsm_app::Endpoint::Process(p) = ch.dst {
                // Self-loops would be recorded once; the graph forbids them,
                // but guard against double-counting anyway.
                if ch.src != rtsm_app::Endpoint::Process(p) {
                    incident[p.index()].push(ci);
                }
            }
        }
        SearchCtx {
            spec,
            platform,
            constraints,
            cost_model,
            incident,
            channels,
        }
    }

    fn channel_touches(&self, ci: usize, p: ProcessId) -> bool {
        let ch = &self.channels[ci];
        ch.src == rtsm_app::Endpoint::Process(p) || ch.dst == rtsm_app::Endpoint::Process(p)
    }

    /// Σ of this cost model's channel terms over the channels incident to
    /// `p0` (and `p1`, deduplicating channels incident to both) under the
    /// current assignment — the only terms a move/swap of those processes
    /// can change. O(degree), not O(channels).
    fn local_cost(&self, mapping: &Mapping, p0: ProcessId, p1: Option<ProcessId>) -> u64 {
        let mut sum = 0u64;
        let mut add = |ci: usize| {
            let ch = &self.channels[ci];
            if let (Some(a), Some(b)) = (
                mapping.endpoint_tile(self.platform, ch.src),
                mapping.endpoint_tile(self.platform, ch.dst),
            ) {
                sum += self
                    .cost_model
                    .channel_cost(self.platform, ch.tokens_per_period, a, b);
            }
        };
        for &ci in &self.incident[p0.index()] {
            add(ci);
        }
        if let Some(p1) = p1 {
            for &ci in &self.incident[p1.index()] {
                if !self.channel_touches(ci, p0) {
                    add(ci);
                }
            }
        }
        sum
    }

    /// Applies `candidate` to mapping + working state. Returns `false`
    /// (leaving both untouched) if resources do not fit.
    fn apply(
        &self,
        mapping: &mut Mapping,
        working: &mut PlatformState,
        candidate: &Step2Move,
    ) -> bool {
        match candidate {
            Step2Move::Move { process, to } => {
                let a = mapping.assignment(*process).expect("assigned in step 1");
                let implementation = &self.spec.library.impls_for(*process)[a.impl_index];
                let claim = claim_for(self.spec, *process, implementation);
                working
                    .release_tile(a.tile, &reservation_of(&claim))
                    .expect("claim was reserved");
                if self.constraints.is_tile_forbidden(*process, *to)
                    || !working.fits_tile(self.platform, *to, &claim)
                {
                    working
                        .claim_tile(self.platform, a.tile, &reservation_of(&claim))
                        .expect("restoring a just-released claim");
                    return false;
                }
                working
                    .claim_tile(self.platform, *to, &reservation_of(&claim))
                    .expect("fits_tile just checked");
                mapping.assign(*process, a.impl_index, *to);
                true
            }
            Step2Move::Swap { a, b } => {
                let aa = mapping.assignment(*a).expect("assigned in step 1");
                let ab = mapping.assignment(*b).expect("assigned in step 1");
                let impl_a = &self.spec.library.impls_for(*a)[aa.impl_index];
                let impl_b = &self.spec.library.impls_for(*b)[ab.impl_index];
                let claim_a = claim_for(self.spec, *a, impl_a);
                let claim_b = claim_for(self.spec, *b, impl_b);
                working
                    .release_tile(aa.tile, &reservation_of(&claim_a))
                    .expect("claim was reserved");
                working
                    .release_tile(ab.tile, &reservation_of(&claim_b))
                    .expect("claim was reserved");
                let ok = !self.constraints.is_tile_forbidden(*a, ab.tile)
                    && !self.constraints.is_tile_forbidden(*b, aa.tile)
                    && working.fits_tile(self.platform, ab.tile, &claim_a)
                    && {
                        working
                            .claim_tile(self.platform, ab.tile, &reservation_of(&claim_a))
                            .expect("fits_tile just checked");
                        if working.fits_tile(self.platform, aa.tile, &claim_b) {
                            true
                        } else {
                            working
                                .release_tile(ab.tile, &reservation_of(&claim_a))
                                .expect("rollback of a claim just made");
                            false
                        }
                    };
                if !ok {
                    working
                        .claim_tile(self.platform, aa.tile, &reservation_of(&claim_a))
                        .expect("restoring a just-released claim");
                    working
                        .claim_tile(self.platform, ab.tile, &reservation_of(&claim_b))
                        .expect("restoring a just-released claim");
                    return false;
                }
                working
                    .claim_tile(self.platform, aa.tile, &reservation_of(&claim_b))
                    .expect("swap target was just vacated");
                mapping.assign(*a, aa.impl_index, ab.tile);
                mapping.assign(*b, ab.impl_index, aa.tile);
                true
            }
        }
    }

    /// The tile a move must return to on undo: the process's tile *before*
    /// the candidate is applied. `None` for swaps, which are their own
    /// inverse and need no origin.
    fn origin_of(mapping: &Mapping, candidate: &Step2Move) -> Option<TileId> {
        match candidate {
            Step2Move::Move { process, .. } => Some(
                mapping
                    .assignment(*process)
                    .expect("assigned in step 1")
                    .tile,
            ),
            Step2Move::Swap { .. } => None,
        }
    }

    /// Undoes a previously applied candidate. `origin` must be the value
    /// [`SearchCtx::origin_of`] captured before the apply — typed as an
    /// `Option` so an unfilled inversion target is a panic, not a bogus
    /// tile id.
    fn undo(
        &self,
        mapping: &mut Mapping,
        working: &mut PlatformState,
        candidate: &Step2Move,
        origin: Option<TileId>,
    ) {
        let inverse = match candidate {
            Step2Move::Move { process, .. } => Step2Move::Move {
                process: *process,
                to: origin.expect("undoing a move requires its origin tile"),
            },
            Step2Move::Swap { a, b } => Step2Move::Swap { a: *a, b: *b },
        };
        let ok = self.apply(mapping, working, &inverse);
        debug_assert!(ok, "undo of an applied candidate always fits");
    }

    /// All candidates for `process` — moves to same-kind tiles and swaps
    /// with same-kind processes — generated into the caller's reusable
    /// buffer (cleared first) instead of a fresh allocation per scan.
    ///
    /// Constraint-aware pruning: a pinned process generates no candidates
    /// at all (every move or swap would take it off its pin, which the
    /// oracle would reject one by one), and no process offers a swap with
    /// a pinned partner. Unconstrained searches are untouched.
    fn candidates_for(&self, mapping: &Mapping, process: ProcessId, out: &mut Vec<Step2Move>) {
        out.clear();
        if self.constraints.pinned_tile(process).is_some() {
            return;
        }
        let Some(assignment) = mapping.assignment(process) else {
            return;
        };
        let kind = self.spec.library.impls_for(process)[assignment.impl_index].tile_kind;
        for (tile, _) in self.platform.tiles_of_kind(kind) {
            if tile != assignment.tile {
                out.push(Step2Move::Move { process, to: tile });
            }
        }
        for (other, other_assignment) in mapping.assignments() {
            if other == process
                || self.spec.graph.process(other).is_control
                || self.constraints.pinned_tile(other).is_some()
            {
                continue;
            }
            let other_kind =
                self.spec.library.impls_for(other)[other_assignment.impl_index].tile_kind;
            if other_kind == kind {
                out.push(Step2Move::Swap {
                    a: process,
                    b: other,
                });
            }
        }
    }

    /// Evaluates `candidate` incrementally: only the channel terms incident
    /// to the touched processes are rescored (O(degree) instead of
    /// O(channels)), and no snapshot is allocated. Mapping and state are
    /// restored before returning. `None` if the candidate does not fit.
    ///
    /// `current_cost` must be the model's cost of the current assignment;
    /// the returned value is exactly what a full recompute would give
    /// (debug-asserted).
    fn evaluate(
        &self,
        mapping: &mut Mapping,
        working: &mut PlatformState,
        candidate: &Step2Move,
        current_cost: u64,
    ) -> Option<u64> {
        let (p0, p1) = match candidate {
            Step2Move::Move { process, .. } => (*process, None),
            Step2Move::Swap { a, b } => (*a, Some(*b)),
        };
        let origin = Self::origin_of(mapping, candidate);
        let before = self.local_cost(mapping, p0, p1);
        if !self.apply(mapping, working, candidate) {
            return None;
        }
        let after = self.local_cost(mapping, p0, p1);
        // Moves and swaps never change implementation choices, so the base
        // term cancels; only incident channel terms differ.
        let cost = current_cost - before + after;
        debug_assert_eq!(
            cost,
            self.cost_model
                .assignment_cost(mapping, self.spec, self.platform),
            "incremental delta must match a full recompute for {candidate:?}"
        );
        self.undo(mapping, working, candidate, origin);
        Some(cost)
    }

    /// The Table-2 row content: the full `(process, tile)` assignment with
    /// `candidate` applied. Only called for winning candidates when trace
    /// capture is on.
    fn snapshot_with(
        &self,
        mapping: &mut Mapping,
        working: &mut PlatformState,
        candidate: &Step2Move,
    ) -> Vec<(ProcessId, TileId)> {
        let origin = Self::origin_of(mapping, candidate);
        let applied = self.apply(mapping, working, candidate);
        debug_assert!(applied, "snapshotting a candidate that was evaluated");
        let snapshot = mapping.assignments().map(|(p, a)| (p, a.tile)).collect();
        self.undo(mapping, working, candidate, origin);
        snapshot
    }
}

/// Runs step 2, improving `mapping` in place (and keeping `working`'s tile
/// reservations in sync). Returns the full search trace (capture on).
pub fn improve_assignment(
    spec: &ApplicationSpec,
    platform: &Platform,
    constraints: &Constraints,
    mapping: &mut Mapping,
    working: &mut PlatformState,
    cost_model: &CostModel,
    config: &Step2Config,
) -> Step2Trace {
    improve_assignment_with(
        spec,
        platform,
        constraints,
        mapping,
        working,
        cost_model,
        config,
        true,
    )
}

/// [`improve_assignment`] with an explicit trace-capture switch.
///
/// With `capture = false` the search makes identical decisions but records
/// no events or assignment snapshots — only the costs and the
/// [`Step2Trace::evaluations`] counter, which stays exactly what
/// `events.len()` would be with capture on. This is the mapper hot path:
/// simulators and benches map thousands of times and read only counters.
#[allow(clippy::too_many_arguments)]
pub fn improve_assignment_with(
    spec: &ApplicationSpec,
    platform: &Platform,
    constraints: &Constraints,
    mapping: &mut Mapping,
    working: &mut PlatformState,
    cost_model: &CostModel,
    config: &Step2Config,
    capture: bool,
) -> Step2Trace {
    let ctx = SearchCtx::new(spec, platform, constraints, cost_model);
    let order = spec
        .graph
        .topological_order()
        .expect("validated specs are acyclic");
    let mut trace = Step2Trace {
        initial_cost: cost_model.assignment_cost(mapping, spec, platform),
        initial_assignment: if capture {
            mapping.assignments().map(|(p, a)| (p, a.tile)).collect()
        } else {
            Vec::new()
        },
        events: Vec::new(),
        evaluations: 0,
        generated: 0,
        final_cost: 0,
    };
    let mut current_cost = trace.initial_cost;
    let mut evaluations = 0usize;
    // Reused across every scan position — one allocation per search, not
    // one per process visit.
    let mut candidates: Vec<Step2Move> = Vec::new();

    match config.strategy {
        Step2Strategy::PaperScan => {
            let mut tried: BTreeSet<TriedKey> = BTreeSet::new();
            'search: loop {
                for &process in &order {
                    // This process's best untried reassignment.
                    let mut best: Option<ScoredCandidate> = None;
                    ctx.candidates_for(mapping, process, &mut candidates);
                    trace.generated += candidates.len() as u64;
                    for candidate in &candidates {
                        if tried.contains(&candidate_key(candidate)) {
                            continue;
                        }
                        if let Some(cost) = ctx.evaluate(mapping, working, candidate, current_cost)
                        {
                            if best.as_ref().is_none_or(|(c, _)| cost < *c) {
                                best = Some((cost, *candidate));
                            }
                        }
                    }
                    let Some((cost, candidate)) = best else {
                        continue;
                    };
                    evaluations += 1;
                    trace.evaluations += 1;
                    let kept = current_cost.saturating_sub(cost) >= config.min_gain;
                    if capture {
                        let assignment = ctx.snapshot_with(mapping, working, &candidate);
                        trace.events.push(Step2Event {
                            candidate,
                            cost,
                            kept,
                            assignment,
                        });
                    }
                    if kept {
                        let applied = ctx.apply(mapping, working, &candidate);
                        debug_assert!(applied, "evaluated candidates fit");
                        current_cost = cost;
                        tried.clear();
                        if evaluations >= config.max_evaluations {
                            break 'search;
                        }
                        // Restart the scan from the top of the process order.
                        continue 'search;
                    }
                    tried.insert(candidate_key(&candidate));
                    if evaluations >= config.max_evaluations {
                        break 'search;
                    }
                }
                // A full pass kept nothing (every keep restarts the scan
                // above): the search has converged.
                break;
            }
        }
        Step2Strategy::BestImprovement => loop {
            let mut best: Option<ScoredCandidate> = None;
            for &process in &order {
                ctx.candidates_for(mapping, process, &mut candidates);
                trace.generated += candidates.len() as u64;
                for candidate in &candidates {
                    if let Some(cost) = ctx.evaluate(mapping, working, candidate, current_cost) {
                        if best.as_ref().is_none_or(|(c, _)| cost < *c) {
                            best = Some((cost, *candidate));
                        }
                    }
                }
            }
            evaluations += 1;
            let Some((cost, candidate)) = best else {
                break;
            };
            if current_cost.saturating_sub(cost) < config.min_gain {
                break;
            }
            trace.evaluations += 1;
            if capture {
                let assignment = ctx.snapshot_with(mapping, working, &candidate);
                trace.events.push(Step2Event {
                    candidate,
                    cost,
                    kept: true,
                    assignment,
                });
            }
            let applied = ctx.apply(mapping, working, &candidate);
            debug_assert!(applied, "evaluated candidates fit");
            current_cost = cost;
            if evaluations >= config.max_evaluations {
                break;
            }
        },
    }

    trace.final_cost = current_cost;
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::step1::assign_implementations;
    use rtsm_app::hiperlan2::{hiperlan2_receiver, Hiperlan2Mode};
    use rtsm_platform::paper::paper_platform;

    fn run_paper(
        strategy: Step2Strategy,
    ) -> (rtsm_app::ApplicationSpec, Platform, Mapping, Step2Trace) {
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let platform = paper_platform();
        let constraints = Constraints::new();
        let out = assign_implementations(&spec, &platform, &platform.initial_state(), &constraints)
            .unwrap();
        let mut mapping = out.mapping;
        let mut working = out.working;
        let trace = improve_assignment(
            &spec,
            &platform,
            &constraints,
            &mut mapping,
            &mut working,
            &CostModel::HopCount,
            &Step2Config {
                strategy,
                ..Step2Config::default()
            },
        );
        (spec, platform, mapping, trace)
    }

    /// The headline reproduction: Table 2's exact cost sequence.
    #[test]
    fn paper_scan_regenerates_table2() {
        let (spec, platform, mapping, trace) = run_paper(Step2Strategy::PaperScan);
        assert_eq!(trace.initial_cost, 11);
        let costs: Vec<u64> = trace.events.iter().map(|e| e.cost).collect();
        let kept: Vec<bool> = trace.events.iter().map(|e| e.kept).collect();
        // Rows 1–3 of Table 2, then the final all-revert pass ("No further
        // choices") which the table collapses.
        assert_eq!(&costs[..3], &[11, 9, 7]);
        assert_eq!(&kept[..3], &[false, true, true]);
        assert!(kept[3..].iter().all(|k| !k), "trailing pass keeps nothing");
        assert_eq!(trace.final_cost, 7);
        assert_eq!(mapping.communication_hops(&spec, &platform), 7);

        // Final placement (Table 2 last row): ARM1=Frq, ARM2=Pfx,
        // MONTIUM1=Rem, MONTIUM2=Inv.OFDM.
        let tile_of = |name: &str| {
            let p = spec.graph.process_by_name(name).unwrap();
            platform
                .tile(mapping.assignment(p).unwrap().tile)
                .name
                .clone()
        };
        assert_eq!(tile_of("Prefix removal"), "ARM2");
        assert_eq!(tile_of("Freq. off. correction"), "ARM1");
        assert_eq!(tile_of("Inverse OFDM"), "MONTIUM2");
        assert_eq!(tile_of("Remainder"), "MONTIUM1");
    }

    #[test]
    fn table2_iteration1_is_the_arm_swap() {
        let (spec, _, _, trace) = run_paper(Step2Strategy::PaperScan);
        let pfx = spec.graph.process_by_name("Prefix removal").unwrap();
        let frq = spec.graph.process_by_name("Freq. off. correction").unwrap();
        match trace.events[0].candidate {
            Step2Move::Swap { a, b } => {
                assert_eq!(swap_key(a, b), swap_key(pfx, frq));
            }
            other => panic!("iteration 1 should be the ARM swap, got {other:?}"),
        }
    }

    #[test]
    fn best_improvement_also_reaches_seven() {
        let (spec, platform, mapping, trace) = run_paper(Step2Strategy::BestImprovement);
        assert_eq!(trace.final_cost, 7);
        assert_eq!(mapping.communication_hops(&spec, &platform), 7);
        // Steepest descent needs only the two improving steps.
        assert_eq!(trace.events.len(), 2);
    }

    #[test]
    fn adherence_preserved_throughout() {
        let (spec, platform, mapping, _) = run_paper(Step2Strategy::PaperScan);
        assert!(crate::criteria::is_adherent(
            &mapping,
            &spec,
            &platform,
            &platform.initial_state()
        ));
    }

    #[test]
    fn capture_off_same_decisions_same_counters() {
        for strategy in [Step2Strategy::PaperScan, Step2Strategy::BestImprovement] {
            let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
            let platform = paper_platform();
            let constraints = Constraints::new();
            let out =
                assign_implementations(&spec, &platform, &platform.initial_state(), &constraints)
                    .unwrap();
            let config = Step2Config {
                strategy,
                ..Step2Config::default()
            };
            let mut m_on = out.mapping.clone();
            let mut w_on = out.working.clone();
            let on = improve_assignment(
                &spec,
                &platform,
                &constraints,
                &mut m_on,
                &mut w_on,
                &CostModel::HopCount,
                &config,
            );
            let mut m_off = out.mapping.clone();
            let mut w_off = out.working.clone();
            let off = improve_assignment_with(
                &spec,
                &platform,
                &constraints,
                &mut m_off,
                &mut w_off,
                &CostModel::HopCount,
                &config,
                false,
            );
            assert_eq!(m_on, m_off, "{strategy:?}: identical final mappings");
            assert_eq!(w_on, w_off, "{strategy:?}: identical working states");
            assert_eq!(on.final_cost, off.final_cost);
            assert_eq!(on.initial_cost, off.initial_cost);
            assert_eq!(on.evaluations, off.evaluations);
            assert_eq!(on.events.len() as u64, on.evaluations);
            assert!(off.events.is_empty(), "capture off records no events");
            assert!(off.initial_assignment.is_empty());
        }
    }

    #[test]
    fn incremental_delta_exact_for_all_cost_models() {
        use rtsm_platform::EnergyModel;
        // The debug assertion inside `evaluate` cross-checks every delta
        // against a full recompute; drive it under all three models.
        for model in [
            CostModel::HopCount,
            CostModel::TrafficWeighted,
            CostModel::Energy(EnergyModel::default()),
        ] {
            let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
            let platform = paper_platform();
            let constraints = Constraints::new();
            let out =
                assign_implementations(&spec, &platform, &platform.initial_state(), &constraints)
                    .unwrap();
            let mut mapping = out.mapping;
            let mut working = out.working;
            let trace = improve_assignment(
                &spec,
                &platform,
                &constraints,
                &mut mapping,
                &mut working,
                &model,
                &Step2Config::default(),
            );
            assert_eq!(
                trace.final_cost,
                model.assignment_cost(&mapping, &spec, &platform),
                "{model:?}: tracked cost must equal a full recompute"
            );
        }
    }

    #[test]
    fn max_evaluations_caps_search() {
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let platform = paper_platform();
        let constraints = Constraints::new();
        let out = assign_implementations(&spec, &platform, &platform.initial_state(), &constraints)
            .unwrap();
        let mut mapping = out.mapping;
        let mut working = out.working;
        let trace = improve_assignment(
            &spec,
            &platform,
            &constraints,
            &mut mapping,
            &mut working,
            &CostModel::HopCount,
            &Step2Config {
                strategy: Step2Strategy::PaperScan,
                max_evaluations: 1,
                min_gain: 1,
            },
        );
        assert_eq!(trace.events.len(), 1);
    }
}
