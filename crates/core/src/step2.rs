//! Step 2: improve the process-to-tile assignment by local search (§3.2).
//!
//! For a process we either *move* it to the best available tile of the same
//! type or *swap* it with another process on the same tile type; "the sum
//! of all Manhattan distances of the application … can increase or remain
//! the same for any iteration. When this happens, that choice is rejected
//! and another is evaluated" (§4.4).
//!
//! Two search disciplines are provided:
//!
//! * [`Step2Strategy::PaperScan`] — processes are scanned in application
//!   (topological) order; each iteration evaluates the scanned process's
//!   best reassignment, keeps it on strict improvement (restarting the
//!   scan) and reverts it otherwise, de-duplicating already-tried
//!   candidates until a full pass keeps nothing. This regenerates Table 2
//!   row for row.
//! * [`Step2Strategy::BestImprovement`] — classical steepest-descent over
//!   all candidates (the ablation baseline).
//!
//! Candidate tiles are filtered for locally sufficient resources (including
//! NI bandwidth), maintaining adequacy and adherence by construction.

use crate::claims::{claim_for, reservation_of};
use crate::cost::CostModel;
use crate::feedback::Constraints;
use crate::mapping::Mapping;
use crate::trace::{Step2Event, Step2Move, Step2Trace};
use rtsm_app::{ApplicationSpec, ProcessId};
use rtsm_platform::{Platform, PlatformState, TileId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Search discipline for step 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Step2Strategy {
    /// One candidate per iteration in scan order with revert logging — the
    /// paper's published behaviour (Table 2).
    PaperScan,
    /// Steepest descent: apply the globally best candidate per iteration.
    BestImprovement,
}

/// Configuration of step 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Step2Config {
    /// Search discipline.
    pub strategy: Step2Strategy,
    /// Hard cap on candidate evaluations ("a maximum number of
    /// iterations", §3.2).
    pub max_evaluations: usize,
    /// Minimum cost decrease for a candidate to be kept ("a minimum gain
    /// from the current iteration", §3.2).
    pub min_gain: u64,
}

impl Default for Step2Config {
    fn default() -> Self {
        Step2Config {
            strategy: Step2Strategy::PaperScan,
            max_evaluations: 1000,
            min_gain: 1,
        }
    }
}

/// A scored candidate: cost with it applied, the move itself, and the
/// evaluated assignment snapshot (Table 2 row content).
type ScoredCandidate = (u64, Step2Move, Vec<(ProcessId, TileId)>);

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum TriedKey {
    Move(ProcessId, TileId),
    Swap(ProcessId, ProcessId), // ordered pair (min, max)
}

fn swap_key(a: ProcessId, b: ProcessId) -> TriedKey {
    if a <= b {
        TriedKey::Swap(a, b)
    } else {
        TriedKey::Swap(b, a)
    }
}

fn candidate_key(c: &Step2Move) -> TriedKey {
    match c {
        Step2Move::Move { process, to } => TriedKey::Move(*process, *to),
        Step2Move::Swap { a, b } => swap_key(*a, *b),
    }
}

struct SearchCtx<'a> {
    spec: &'a ApplicationSpec,
    platform: &'a Platform,
    constraints: &'a Constraints,
    cost_model: &'a CostModel,
}

impl SearchCtx<'_> {
    /// Applies `candidate` to mapping + working state. Returns `false`
    /// (leaving both untouched) if resources do not fit.
    fn apply(
        &self,
        mapping: &mut Mapping,
        working: &mut PlatformState,
        candidate: &Step2Move,
    ) -> bool {
        match candidate {
            Step2Move::Move { process, to } => {
                let a = mapping.assignment(*process).expect("assigned in step 1");
                let implementation = &self.spec.library.impls_for(*process)[a.impl_index];
                let claim = claim_for(self.spec, *process, implementation);
                working
                    .release_tile(a.tile, &reservation_of(&claim))
                    .expect("claim was reserved");
                if self.constraints.is_tile_forbidden(*process, *to)
                    || !working.fits_tile(self.platform, *to, &claim)
                {
                    working
                        .claim_tile(self.platform, a.tile, &reservation_of(&claim))
                        .expect("restoring a just-released claim");
                    return false;
                }
                working
                    .claim_tile(self.platform, *to, &reservation_of(&claim))
                    .expect("fits_tile just checked");
                mapping.assign(*process, a.impl_index, *to);
                true
            }
            Step2Move::Swap { a, b } => {
                let aa = mapping.assignment(*a).expect("assigned in step 1");
                let ab = mapping.assignment(*b).expect("assigned in step 1");
                let impl_a = &self.spec.library.impls_for(*a)[aa.impl_index];
                let impl_b = &self.spec.library.impls_for(*b)[ab.impl_index];
                let claim_a = claim_for(self.spec, *a, impl_a);
                let claim_b = claim_for(self.spec, *b, impl_b);
                working
                    .release_tile(aa.tile, &reservation_of(&claim_a))
                    .expect("claim was reserved");
                working
                    .release_tile(ab.tile, &reservation_of(&claim_b))
                    .expect("claim was reserved");
                let ok = !self.constraints.is_tile_forbidden(*a, ab.tile)
                    && !self.constraints.is_tile_forbidden(*b, aa.tile)
                    && working.fits_tile(self.platform, ab.tile, &claim_a)
                    && {
                        working
                            .claim_tile(self.platform, ab.tile, &reservation_of(&claim_a))
                            .expect("fits_tile just checked");
                        if working.fits_tile(self.platform, aa.tile, &claim_b) {
                            true
                        } else {
                            working
                                .release_tile(ab.tile, &reservation_of(&claim_a))
                                .expect("rollback of a claim just made");
                            false
                        }
                    };
                if !ok {
                    working
                        .claim_tile(self.platform, aa.tile, &reservation_of(&claim_a))
                        .expect("restoring a just-released claim");
                    working
                        .claim_tile(self.platform, ab.tile, &reservation_of(&claim_b))
                        .expect("restoring a just-released claim");
                    return false;
                }
                working
                    .claim_tile(self.platform, aa.tile, &reservation_of(&claim_b))
                    .expect("swap target was just vacated");
                mapping.assign(*a, aa.impl_index, ab.tile);
                mapping.assign(*b, ab.impl_index, aa.tile);
                true
            }
        }
    }

    fn invert(candidate: &Step2Move) -> Step2Move {
        match candidate {
            Step2Move::Move { process, .. } => Step2Move::Move {
                process: *process,
                // Inversion target is filled by the caller, which knows the
                // origin tile; see `undo`.
                to: TileId::from_index(usize::MAX),
            },
            Step2Move::Swap { a, b } => Step2Move::Swap { a: *a, b: *b },
        }
    }

    /// Undoes a previously applied candidate.
    fn undo(
        &self,
        mapping: &mut Mapping,
        working: &mut PlatformState,
        candidate: &Step2Move,
        origin: TileId,
    ) {
        let inverse = match Self::invert(candidate) {
            Step2Move::Move { process, .. } => Step2Move::Move {
                process,
                to: origin,
            },
            swap => swap,
        };
        let ok = self.apply(mapping, working, &inverse);
        debug_assert!(ok, "undo of an applied candidate always fits");
    }

    /// All candidates for `process`: moves to same-kind tiles and swaps
    /// with same-kind processes.
    fn candidates_for(&self, mapping: &Mapping, process: ProcessId) -> Vec<Step2Move> {
        let Some(assignment) = mapping.assignment(process) else {
            return Vec::new();
        };
        let kind = self.spec.library.impls_for(process)[assignment.impl_index].tile_kind;
        let mut out = Vec::new();
        for (tile, _) in self.platform.tiles_of_kind(kind) {
            if tile != assignment.tile {
                out.push(Step2Move::Move { process, to: tile });
            }
        }
        for (other, other_assignment) in mapping.assignments() {
            if other == process || self.spec.graph.process(other).is_control {
                continue;
            }
            let other_kind =
                self.spec.library.impls_for(other)[other_assignment.impl_index].tile_kind;
            if other_kind == kind {
                out.push(Step2Move::Swap {
                    a: process,
                    b: other,
                });
            }
        }
        out
    }

    /// Evaluates `candidate`: cost with it applied, plus the evaluated
    /// assignment snapshot. Mapping and state are restored before
    /// returning. `None` if the candidate does not fit.
    fn evaluate(
        &self,
        mapping: &mut Mapping,
        working: &mut PlatformState,
        candidate: &Step2Move,
    ) -> Option<(u64, Vec<(ProcessId, TileId)>)> {
        let origin = match candidate {
            Step2Move::Move { process, .. } => mapping.assignment(*process)?.tile,
            Step2Move::Swap { .. } => TileId::from_index(0), // unused for swaps
        };
        if !self.apply(mapping, working, candidate) {
            return None;
        }
        let cost = self.cost_model.cost(mapping, self.spec, self.platform);
        let snapshot = mapping.assignments().map(|(p, a)| (p, a.tile)).collect();
        self.undo(mapping, working, candidate, origin);
        Some((cost, snapshot))
    }
}

/// Runs step 2, improving `mapping` in place (and keeping `working`'s tile
/// reservations in sync). Returns the full search trace.
pub fn improve_assignment(
    spec: &ApplicationSpec,
    platform: &Platform,
    constraints: &Constraints,
    mapping: &mut Mapping,
    working: &mut PlatformState,
    cost_model: &CostModel,
    config: &Step2Config,
) -> Step2Trace {
    let ctx = SearchCtx {
        spec,
        platform,
        constraints,
        cost_model,
    };
    let order = spec
        .graph
        .topological_order()
        .expect("validated specs are acyclic");
    let mut trace = Step2Trace {
        initial_cost: cost_model.cost(mapping, spec, platform),
        initial_assignment: mapping.assignments().map(|(p, a)| (p, a.tile)).collect(),
        events: Vec::new(),
        final_cost: 0,
    };
    let mut current_cost = trace.initial_cost;
    let mut evaluations = 0usize;

    match config.strategy {
        Step2Strategy::PaperScan => {
            let mut tried: BTreeSet<TriedKey> = BTreeSet::new();
            'search: loop {
                let kept_this_pass = false;
                for &process in &order {
                    // This process's best untried reassignment.
                    let mut best: Option<ScoredCandidate> = None;
                    for candidate in ctx.candidates_for(mapping, process) {
                        if tried.contains(&candidate_key(&candidate)) {
                            continue;
                        }
                        if let Some((cost, snapshot)) = ctx.evaluate(mapping, working, &candidate) {
                            if best.as_ref().is_none_or(|(c, _, _)| cost < *c) {
                                best = Some((cost, candidate, snapshot));
                            }
                        }
                    }
                    let Some((cost, candidate, snapshot)) = best else {
                        continue;
                    };
                    evaluations += 1;
                    let kept = current_cost.saturating_sub(cost) >= config.min_gain;
                    trace.events.push(Step2Event {
                        candidate,
                        cost,
                        kept,
                        assignment: snapshot,
                    });
                    if kept {
                        let applied = ctx.apply(mapping, working, &candidate);
                        debug_assert!(applied, "evaluated candidates fit");
                        current_cost = cost;
                        tried.clear();
                        if evaluations >= config.max_evaluations {
                            break 'search;
                        }
                        // Restart the scan; `kept_this_pass` need not be set
                        // because the pass is abandoned here.
                        continue 'search;
                    }
                    tried.insert(candidate_key(&candidate));
                    if evaluations >= config.max_evaluations {
                        break 'search;
                    }
                }
                if !kept_this_pass {
                    break;
                }
            }
        }
        Step2Strategy::BestImprovement => loop {
            let mut best: Option<ScoredCandidate> = None;
            for &process in &order {
                for candidate in ctx.candidates_for(mapping, process) {
                    if let Some((cost, snapshot)) = ctx.evaluate(mapping, working, &candidate) {
                        if best.as_ref().is_none_or(|(c, _, _)| cost < *c) {
                            best = Some((cost, candidate, snapshot));
                        }
                    }
                }
            }
            evaluations += 1;
            let Some((cost, candidate, snapshot)) = best else {
                break;
            };
            if current_cost.saturating_sub(cost) < config.min_gain {
                break;
            }
            trace.events.push(Step2Event {
                candidate,
                cost,
                kept: true,
                assignment: snapshot,
            });
            let applied = ctx.apply(mapping, working, &candidate);
            debug_assert!(applied, "evaluated candidates fit");
            current_cost = cost;
            if evaluations >= config.max_evaluations {
                break;
            }
        },
    }

    trace.final_cost = current_cost;
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::step1::assign_implementations;
    use rtsm_app::hiperlan2::{hiperlan2_receiver, Hiperlan2Mode};
    use rtsm_platform::paper::paper_platform;

    fn run_paper(
        strategy: Step2Strategy,
    ) -> (rtsm_app::ApplicationSpec, Platform, Mapping, Step2Trace) {
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let platform = paper_platform();
        let constraints = Constraints::new();
        let out = assign_implementations(&spec, &platform, &platform.initial_state(), &constraints)
            .unwrap();
        let mut mapping = out.mapping;
        let mut working = out.working;
        let trace = improve_assignment(
            &spec,
            &platform,
            &constraints,
            &mut mapping,
            &mut working,
            &CostModel::HopCount,
            &Step2Config {
                strategy,
                ..Step2Config::default()
            },
        );
        (spec, platform, mapping, trace)
    }

    /// The headline reproduction: Table 2's exact cost sequence.
    #[test]
    fn paper_scan_regenerates_table2() {
        let (spec, platform, mapping, trace) = run_paper(Step2Strategy::PaperScan);
        assert_eq!(trace.initial_cost, 11);
        let costs: Vec<u64> = trace.events.iter().map(|e| e.cost).collect();
        let kept: Vec<bool> = trace.events.iter().map(|e| e.kept).collect();
        // Rows 1–3 of Table 2, then the final all-revert pass ("No further
        // choices") which the table collapses.
        assert_eq!(&costs[..3], &[11, 9, 7]);
        assert_eq!(&kept[..3], &[false, true, true]);
        assert!(kept[3..].iter().all(|k| !k), "trailing pass keeps nothing");
        assert_eq!(trace.final_cost, 7);
        assert_eq!(mapping.communication_hops(&spec, &platform), 7);

        // Final placement (Table 2 last row): ARM1=Frq, ARM2=Pfx,
        // MONTIUM1=Rem, MONTIUM2=Inv.OFDM.
        let tile_of = |name: &str| {
            let p = spec.graph.process_by_name(name).unwrap();
            platform
                .tile(mapping.assignment(p).unwrap().tile)
                .name
                .clone()
        };
        assert_eq!(tile_of("Prefix removal"), "ARM2");
        assert_eq!(tile_of("Freq. off. correction"), "ARM1");
        assert_eq!(tile_of("Inverse OFDM"), "MONTIUM2");
        assert_eq!(tile_of("Remainder"), "MONTIUM1");
    }

    #[test]
    fn table2_iteration1_is_the_arm_swap() {
        let (spec, _, _, trace) = run_paper(Step2Strategy::PaperScan);
        let pfx = spec.graph.process_by_name("Prefix removal").unwrap();
        let frq = spec.graph.process_by_name("Freq. off. correction").unwrap();
        match trace.events[0].candidate {
            Step2Move::Swap { a, b } => {
                assert_eq!(swap_key(a, b), swap_key(pfx, frq));
            }
            other => panic!("iteration 1 should be the ARM swap, got {other:?}"),
        }
    }

    #[test]
    fn best_improvement_also_reaches_seven() {
        let (spec, platform, mapping, trace) = run_paper(Step2Strategy::BestImprovement);
        assert_eq!(trace.final_cost, 7);
        assert_eq!(mapping.communication_hops(&spec, &platform), 7);
        // Steepest descent needs only the two improving steps.
        assert_eq!(trace.events.len(), 2);
    }

    #[test]
    fn adherence_preserved_throughout() {
        let (spec, platform, mapping, _) = run_paper(Step2Strategy::PaperScan);
        assert!(crate::criteria::is_adherent(
            &mapping,
            &spec,
            &platform,
            &platform.initial_state()
        ));
    }

    #[test]
    fn max_evaluations_caps_search() {
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let platform = paper_platform();
        let constraints = Constraints::new();
        let out = assign_implementations(&spec, &platform, &platform.initial_state(), &constraints)
            .unwrap();
        let mut mapping = out.mapping;
        let mut working = out.working;
        let trace = improve_assignment(
            &spec,
            &platform,
            &constraints,
            &mut mapping,
            &mut working,
            &CostModel::HopCount,
            &Step2Config {
                strategy: Step2Strategy::PaperScan,
                max_evaluations: 1,
                min_gain: 1,
            },
        );
        assert_eq!(trace.events.len(), 1);
    }
}
