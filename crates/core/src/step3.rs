//! Step 3: assign channels to paths (§3.3).
//!
//! "The channels are sorted by non-increasing throughput … to increase the
//! probability that a heavy demanding channel gets assigned a better path.
//! In each iteration for a given channel, a shortest path … is determined,
//! where only those paths … are taken into account which still have enough
//! capacity."

use crate::feedback::Feedback;
use crate::mapping::{Mapping, RouteBinding};
use rtsm_app::{ApplicationSpec, KpnChannelId};
use rtsm_platform::{Platform, PlatformState, PlatformTransaction, RouteScratch, RoutingPolicy};

/// Routes every data-stream channel of `mapping` with the paper's adaptive
/// (capacity-aware shortest path) policy. See [`route_channels_with`].
///
/// # Errors
///
/// Same as [`route_channels_with`].
pub fn route_channels(
    spec: &ApplicationSpec,
    platform: &Platform,
    mapping: &mut Mapping,
    working: &mut PlatformState,
) -> Result<(), Vec<Feedback>> {
    route_channels_with(spec, platform, mapping, working, RoutingPolicy::Adaptive)
}

/// Routes every data-stream channel of `mapping` under `policy`, allocating
/// link and NI bandwidth in `working`. Channels between processes on the
/// same tile become [`RouteBinding::SameTile`].
///
/// `mapping` must enter route-free (steps 1–2 produce assignments only);
/// any stale routes would be released against `working` on rollback.
///
/// On failure, **all** allocations made by this call are rolled back and
/// the routes are cleared, so the caller can refine and retry.
///
/// # Errors
///
/// Feedback naming the unroutable channel plus a `ForbidTile` item for its
/// producer's tile (the refinement lever).
pub fn route_channels_with(
    spec: &ApplicationSpec,
    platform: &Platform,
    mapping: &mut Mapping,
    working: &mut PlatformState,
    policy: RoutingPolicy,
) -> Result<(), Vec<Feedback>> {
    // Sort by non-increasing throughput, ties by channel id for
    // reproducibility.
    let mut channels: Vec<(KpnChannelId, u64)> = spec
        .graph
        .stream_channels()
        .map(|(id, ch)| (id, ch.tokens_per_period))
        .collect();
    channels.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    // One scratch serves every channel of this call: the path searches
    // themselves allocate nothing, and a path is cloned exactly once — into
    // the mapping — when it is actually kept. All bandwidth reservations are
    // staged in one transaction: a failed channel drops the transaction,
    // which rolls every earlier allocation back; only a fully routed
    // mapping commits.
    debug_assert!(
        mapping.routes().next().is_none(),
        "route_channels_with requires a route-free mapping (its routes \
         double as the record of what this call allocated)"
    );
    let mut scratch = RouteScratch::new();
    let mut tx = PlatformTransaction::begin(platform, working);

    for (channel_id, tokens) in channels {
        let ch = spec.graph.channel(channel_id);
        let Some(from) = mapping.endpoint_tile(platform, ch.src) else {
            mapping.clear_routes();
            return Err(vec![Feedback::Infeasible {
                detail: format!("channel {channel_id:?} has an unmapped producer"),
            }]);
        };
        let Some(to) = mapping.endpoint_tile(platform, ch.dst) else {
            mapping.clear_routes();
            return Err(vec![Feedback::Infeasible {
                detail: format!("channel {channel_id:?} has an unmapped consumer"),
            }]);
        };
        if from == to {
            mapping.bind_route(channel_id, RouteBinding::SameTile);
            continue;
        }
        let demand = spec.qos.words_per_second(tokens);
        match policy.route_with(platform, tx.state(), from, to, demand, &mut scratch) {
            Ok(path) => {
                let path = path.clone();
                tx.allocate_path(&path)
                    .expect("route() verified residual capacity");
                mapping.bind_route(channel_id, RouteBinding::Path(path));
            }
            Err(_) => {
                let mut feedback = vec![Feedback::RouteFailed {
                    channel: channel_id,
                }];
                // Refinement lever: force the producer elsewhere (stream
                // endpoints are fixed, so fall back to the consumer then).
                if let rtsm_app::Endpoint::Process(p) = ch.src {
                    feedback.push(Feedback::ForbidTile {
                        process: p,
                        tile: from,
                    });
                } else if let rtsm_app::Endpoint::Process(p) = ch.dst {
                    feedback.push(Feedback::ForbidTile {
                        process: p,
                        tile: to,
                    });
                }
                mapping.clear_routes();
                return Err(feedback); // tx dropped: allocations rolled back
            }
        }
    }
    tx.commit();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::feedback::Constraints;
    use crate::step1::assign_implementations;
    use crate::step2::{improve_assignment, Step2Config};
    use rtsm_app::hiperlan2::{hiperlan2_receiver, Hiperlan2Mode};
    use rtsm_platform::paper::paper_platform;

    fn mapped_paper() -> (rtsm_app::ApplicationSpec, Platform, Mapping, PlatformState) {
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let platform = paper_platform();
        let constraints = Constraints::new();
        let out = assign_implementations(&spec, &platform, &platform.initial_state(), &constraints)
            .unwrap();
        let mut mapping = out.mapping;
        let mut working = out.working;
        improve_assignment(
            &spec,
            &platform,
            &constraints,
            &mut mapping,
            &mut working,
            &CostModel::HopCount,
            &Step2Config::default(),
        );
        (spec, platform, mapping, working)
    }

    #[test]
    fn paper_mapping_routes_with_twelve_router_traversals() {
        let (spec, platform, mut mapping, mut working) = mapped_paper();
        route_channels(&spec, &platform, &mut mapping, &mut working).unwrap();
        // 5 channels, total Manhattan 7 → 7 hops → 12 routers traversed
        // (hops + 1 per channel), matching Figure 3's 12 router actors.
        let total_hops: u32 = mapping.routes().map(|(_, r)| r.hops()).sum();
        assert_eq!(total_hops, 7);
        let total_routers: u32 = mapping
            .routes()
            .map(|(_, r)| match r {
                RouteBinding::SameTile => 0,
                RouteBinding::Path(p) => p.router_count(),
            })
            .sum();
        assert_eq!(total_routers, 12);
        assert_eq!(mapping.routes().count(), 5);
    }

    #[test]
    fn routes_are_minimal_paths() {
        let (spec, platform, mut mapping, mut working) = mapped_paper();
        route_channels(&spec, &platform, &mut mapping, &mut working).unwrap();
        for (id, route) in mapping.routes() {
            if let RouteBinding::Path(p) = route {
                assert_eq!(
                    p.hops(),
                    platform.manhattan(p.from, p.to),
                    "channel {id:?} detoured on an empty NoC"
                );
            }
        }
    }

    #[test]
    fn heaviest_channel_routed_first() {
        // With the default capacities nothing contends; instead check the
        // sort order by starving the NoC and observing which channel's
        // failure is reported: the heaviest (A/D→Pfx, 80 tokens).
        let (spec, platform, mut mapping, working) = mapped_paper();
        let mut starved = working.clone();
        for (l, _) in platform.links() {
            let residual = starved.residual_link(&platform, l);
            if residual > 0 {
                starved.allocate_link(&platform, l, residual).unwrap();
            }
        }
        let err = route_channels(&spec, &platform, &mut mapping, &mut starved).unwrap_err();
        let heaviest = spec
            .graph
            .stream_channels()
            .max_by_key(|(_, c)| c.tokens_per_period)
            .unwrap()
            .0;
        assert!(err.iter().any(|f| matches!(
            f,
            Feedback::RouteFailed { channel } if *channel == heaviest
        )));
    }

    #[test]
    fn failure_rolls_back_allocations() {
        let (spec, platform, mut mapping, working) = mapped_paper();
        // Saturate a cut separating A/D (1,1) from the rest for demands of
        // 20M words/s: leave less than that on all four of its links.
        let mut constrained = working.clone();
        let ad = platform.tile_by_name("A/D").unwrap();
        let pos = platform.tile(ad).position;
        for n in platform.neighbours(pos) {
            for (a, b) in [(pos, n), (n, pos)] {
                let l = platform.link_between(a, b).unwrap();
                let residual = constrained.residual_link(&platform, l);
                constrained
                    .allocate_link(&platform, l, residual - 1_000_000)
                    .unwrap();
            }
        }
        let snapshot = constrained.clone();
        let err = route_channels(&spec, &platform, &mut mapping, &mut constrained);
        assert!(err.is_err());
        assert_eq!(constrained, snapshot, "failed routing must roll back");
        assert_eq!(mapping.routes().count(), 0);
    }
}
