//! The run-time resource manager: multi-application lifecycles over one
//! shared occupancy ledger.
//!
//! The paper's motivation (§1.3) is that "at run-time when starting an
//! application, the actual set of applications already running is known,
//! allowing for a spatial mapping based on actual, rather than worst case
//! information". [`RuntimeManager`] is that run-time component: it owns the
//! [`PlatformState`] ledger, admits applications by mapping them with a
//! pluggable [`MappingAlgorithm`] against the *actual* occupancy, commits
//! admitted mappings atomically, and releases them again on
//! [`stop`](RuntimeManager::stop).
//!
//! Running applications are identified by [`AppHandle`]s — stable, unique
//! tokens that stay valid however many other applications start or stop in
//! between (unlike positional indices, which shift).
//!
//! # Example
//!
//! ```
//! use rtsm_app::hiperlan2::{hiperlan2_receiver, Hiperlan2Mode};
//! use rtsm_core::mapper::SpatialMapper;
//! use rtsm_core::runtime::RuntimeManager;
//! use rtsm_platform::paper::paper_platform;
//!
//! let mut manager = RuntimeManager::new(paper_platform(), SpatialMapper::default());
//! let handle = manager
//!     .start(hiperlan2_receiver(Hiperlan2Mode::Qpsk34))
//!     .expect("the paper's case study is admitted");
//! assert_eq!(manager.n_running(), 1);
//! // A second receiver does not fit while the first holds both MONTIUMs…
//! assert!(manager.start(hiperlan2_receiver(Hiperlan2Mode::Qpsk34)).is_err());
//! // …until the first one stops.
//! manager.stop(handle).expect("running application stops");
//! assert!(manager.start(hiperlan2_receiver(Hiperlan2Mode::Qpsk34)).is_ok());
//! ```

use crate::algorithm::{MappingAlgorithm, MappingOutcome};
use crate::constraints::MappingConstraints;
use crate::cost::CostModel;
use crate::error::{MapError, MapErrorKind};
use crate::mapping::RouteBinding;
use rtsm_app::ApplicationSpec;
use rtsm_obs as obs;
use rtsm_platform::{
    EnergyModel, LinkId, Platform, PlatformError, PlatformState, PlatformTransaction, TileId,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A stable identifier of one running application within a
/// [`RuntimeManager`]. Handles are unique across the manager's lifetime
/// and never reused, so a stale handle fails cleanly instead of silently
/// addressing a different application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AppHandle(u64);

impl AppHandle {
    /// The raw handle value (for logs and serialized scenario records).
    pub fn id(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for AppHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "app#{}", self.0)
    }
}

/// Why an *admission* (a [`start`](RuntimeManager::start)) failed. Errors
/// of the other lifecycle operations — stop, remap — are
/// [`RuntimeError`]s, which this type converts into via `From`.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmissionError {
    /// The algorithm found no feasible mapping: the application is
    /// *rejected* under the current occupancy (the expected, recoverable
    /// outcome when the platform is full).
    Rejected(MapError),
    /// Mapping succeeded but committing its reservations failed. The
    /// ledger is left unchanged. This cannot happen when the ledger is
    /// only mutated through one manager; it guards external mutation.
    CommitFailed(PlatformError),
}

/// The serializable discriminant of [`AdmissionError`]: which variant
/// occurred (and, for rejections, which [`MapErrorKind`]), without the
/// attempt-specific payload. Rejection-reason histograms in scenario and
/// simulation reports are keyed by this type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AdmissionErrorKind {
    /// See [`AdmissionError::Rejected`]; carries the mapping failure kind.
    Rejected(MapErrorKind),
    /// See [`AdmissionError::CommitFailed`].
    CommitFailed,
}

impl fmt::Display for AdmissionErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionErrorKind::Rejected(kind) => write!(f, "rejected/{kind}"),
            AdmissionErrorKind::CommitFailed => f.write_str("commit-failed"),
        }
    }
}

impl AdmissionError {
    /// This error's [`AdmissionErrorKind`] discriminant.
    pub fn kind(&self) -> AdmissionErrorKind {
        match self {
            AdmissionError::Rejected(e) => AdmissionErrorKind::Rejected(e.kind()),
            AdmissionError::CommitFailed(_) => AdmissionErrorKind::CommitFailed,
        }
    }
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::Rejected(e) => write!(f, "application rejected: {e}"),
            AdmissionError::CommitFailed(e) => {
                write!(f, "admission commit failed (ledger unchanged): {e}")
            }
        }
    }
}

impl std::error::Error for AdmissionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AdmissionError::Rejected(e) => Some(e),
            AdmissionError::CommitFailed(e) => Some(e),
        }
    }
}

/// Why a lifecycle operation of the [`RuntimeManager`] failed. Admission
/// failures keep their own [`AdmissionError`] type (they are the expected,
/// recoverable outcome admission policies reason about); everything else —
/// stopping or remapping an unknown handle, a release the ledger cannot
/// honour — is a runtime fault, not an "admission" error.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// An admission step failed (start, or the admission inside a remap).
    Admission(AdmissionError),
    /// The handle does not name a running application (already stopped,
    /// or from another manager).
    UnknownHandle(AppHandle),
    /// Releasing an application's reservations failed — the ledger no
    /// longer matches what was committed (external mutation). The partial
    /// release is rolled back; the ledger is unchanged.
    ReleaseFailed(PlatformError),
}

/// The serializable discriminant of [`RuntimeError`]; keeps the
/// [`AdmissionErrorKind`] sub-discriminant for admission failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RuntimeErrorKind {
    /// See [`RuntimeError::Admission`]; carries the admission failure kind.
    Admission(AdmissionErrorKind),
    /// See [`RuntimeError::UnknownHandle`].
    UnknownHandle,
    /// See [`RuntimeError::ReleaseFailed`].
    ReleaseFailed,
}

impl fmt::Display for RuntimeErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeErrorKind::Admission(kind) => write!(f, "admission/{kind}"),
            RuntimeErrorKind::UnknownHandle => f.write_str("unknown-handle"),
            RuntimeErrorKind::ReleaseFailed => f.write_str("release-failed"),
        }
    }
}

impl RuntimeError {
    /// This error's [`RuntimeErrorKind`] discriminant.
    pub fn kind(&self) -> RuntimeErrorKind {
        match self {
            RuntimeError::Admission(e) => RuntimeErrorKind::Admission(e.kind()),
            RuntimeError::UnknownHandle(_) => RuntimeErrorKind::UnknownHandle,
            RuntimeError::ReleaseFailed(_) => RuntimeErrorKind::ReleaseFailed,
        }
    }
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Admission(e) => e.fmt(f),
            RuntimeError::UnknownHandle(h) => {
                write!(f, "no running application with handle {h}")
            }
            RuntimeError::ReleaseFailed(e) => {
                write!(f, "failed to release reservations: {e}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Admission(e) => Some(e),
            RuntimeError::ReleaseFailed(e) => Some(e),
            RuntimeError::UnknownHandle(_) => None,
        }
    }
}

impl From<AdmissionError> for RuntimeError {
    fn from(e: AdmissionError) -> Self {
        RuntimeError::Admission(e)
    }
}

/// Error of [`RuntimeManager::stop_all`]: a release failed partway
/// through. The applications stopped before the failure were released
/// successfully — their records are carried here, since they are no
/// longer registered with the manager — while the failing application and
/// all later ones keep running.
#[derive(Debug, Clone)]
pub struct StopAllError {
    /// Records of the applications stopped before the failure.
    pub stopped: Vec<(AppHandle, RunningApp)>,
    /// Why the next release failed.
    pub error: RuntimeError,
}

impl fmt::Display for StopAllError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "stop_all failed after stopping {} application(s): {}",
            self.stopped.len(),
            self.error
        )
    }
}

impl std::error::Error for StopAllError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// The unified objective [`RuntimeManager::start_with_reconfiguration`]
/// minimizes over migration plans:
///
/// ```text
/// objective = steady_state_energy_pj · 1000 + λ‰ · migration_energy_pj
/// ```
///
/// where *steady-state energy* is the total per-period energy of every
/// running application after the plan commits (the arriving application
/// plus all victims under their new mappings plus everything untouched),
/// and *migration energy* is the one-off state-transfer cost of the plan
/// priced through [`CostModel::migration_cost`]. λ is carried in permille
/// so the trade-off sweeps exactly in integers: λ‰ = 0 ignores transfer
/// cost entirely, λ‰ = 1000 weights one picojoule of transfer like one
/// picojoule of steady-state energy per period, larger values make the
/// manager increasingly reluctant to move state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReconfigurationObjective {
    /// Weight of migration energy against steady-state energy, in
    /// permille (see the type docs).
    pub lambda_permille: u64,
}

impl Default for ReconfigurationObjective {
    fn default() -> Self {
        ReconfigurationObjective {
            lambda_permille: 1000,
        }
    }
}

impl ReconfigurationObjective {
    /// An objective ignoring migration energy entirely (λ‰ = 0): plans are
    /// ranked purely by post-plan steady-state energy.
    pub fn steady_state_only() -> Self {
        ReconfigurationObjective { lambda_permille: 0 }
    }

    /// Scores one plan; lower is better. Saturating, so extreme λ values
    /// degrade to "worst possible" instead of wrapping.
    pub fn score(&self, steady_state_energy_pj: u64, migration_energy_pj: u64) -> u64 {
        steady_state_energy_pj
            .saturating_mul(1000)
            .saturating_add(self.lambda_permille.saturating_mul(migration_energy_pj))
    }
}

/// Whether a feasible migration plan may actually be committed: the Pareto
/// lever trading recovered admissions against reconfiguration energy.
/// [`AlwaysAdmit`](AdmissionPolicy::AlwaysAdmit) recovers everything it
/// can; the bounded policies refuse recoveries whose state-transfer energy
/// is not worth the admission, accepting a little more blocking for much
/// less migration traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum AdmissionPolicy {
    /// Commit the cheapest feasible plan unconditionally (the pre-policy
    /// behaviour).
    #[default]
    AlwaysAdmit,
    /// Refuse plans whose total migration energy exceeds a hard per-plan
    /// budget.
    EnergyBudget {
        /// Most state-transfer picojoules one plan may spend.
        max_transfer_pj: u64,
    },
    /// Refuse plans whose migration energy cannot be amortized: the
    /// transfer must cost no more than `horizon_periods` periods of the
    /// *admitted* application's steady-state energy — a proxy for the
    /// energy the recovered admission is expected to be worth over its
    /// lifetime (holding time).
    AmortizedPayback {
        /// Periods of the admitted application's energy the transfer may
        /// cost at most.
        horizon_periods: u64,
    },
}

impl AdmissionPolicy {
    /// Whether a plan spending `migration_energy_pj` to admit an
    /// application consuming `admitted_energy_pj` per period may commit.
    pub fn admits(&self, migration_energy_pj: u64, admitted_energy_pj: u64) -> bool {
        match self {
            AdmissionPolicy::AlwaysAdmit => true,
            AdmissionPolicy::EnergyBudget { max_transfer_pj } => {
                migration_energy_pj <= *max_transfer_pj
            }
            AdmissionPolicy::AmortizedPayback { horizon_periods } => {
                migration_energy_pj <= horizon_periods.saturating_mul(admitted_energy_pj)
            }
        }
    }

    /// A stable label for reports and Pareto tables.
    pub fn label(&self) -> String {
        match self {
            AdmissionPolicy::AlwaysAdmit => "always-admit".to_string(),
            AdmissionPolicy::EnergyBudget { max_transfer_pj } => {
                format!("energy-budget({max_transfer_pj}pJ)")
            }
            AdmissionPolicy::AmortizedPayback { horizon_periods } => {
                format!("amortized-payback({horizon_periods})")
            }
        }
    }
}

impl fmt::Display for AdmissionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// How [`RuntimeManager::start_with_reconfiguration`] may defragment the
/// platform when plain admission fails: how many running applications one
/// migration plan may move, how many plans to enumerate, how candidate
/// victims are ranked, how plans are scored, and which feasible plans the
/// admission policy lets commit.
#[derive(Debug, Clone, PartialEq)]
pub struct ReconfigurationPolicy {
    /// Most running applications one plan may migrate (`k`). 0 disables
    /// reconfiguration (plain admission only).
    pub max_migrations: usize,
    /// Most migration plans enumerated before the search stops and the
    /// cheapest feasible plan found so far (if any) commits.
    pub max_plans: usize,
    /// Ranks candidate victims by per-application *move cost*: the
    /// [`CostModel::assignment_cost`] of their current mapping. Cheap-to-
    /// move (little communication) applications are enumerated first.
    pub cost_model: CostModel,
    /// Prices the *state-transfer* (migration) term of the objective:
    /// [`CostModel::Energy`] over this model via
    /// [`CostModel::migration_cost`] — the same per-channel decomposition
    /// victim ranking uses, not a separate account. The steady-state term
    /// comes from each mapping outcome's own energy account (the mapping
    /// algorithm's energy model), so keep the two models consistent when
    /// overriding either.
    pub energy: EnergyModel,
    /// Scores candidate plans; the *cheapest* feasible plan commits, not
    /// the first.
    pub objective: ReconfigurationObjective,
    /// Which feasible plans may commit at all.
    pub admission: AdmissionPolicy,
}

impl Default for ReconfigurationPolicy {
    fn default() -> Self {
        ReconfigurationPolicy {
            max_migrations: 2,
            max_plans: 8,
            cost_model: CostModel::HopCount,
            energy: EnergyModel::default(),
            objective: ReconfigurationObjective::default(),
            admission: AdmissionPolicy::AlwaysAdmit,
        }
    }
}

/// One committed migration: a running application released its resources
/// and was re-admitted elsewhere inside the same transaction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Migration {
    /// The migrated application (its handle is unchanged).
    pub handle: AppHandle,
    /// The move cost that ranked it (see
    /// [`ReconfigurationPolicy::cost_model`]).
    pub move_cost: u64,
    /// Processes whose tile actually changed.
    pub processes_moved: usize,
    /// Modelled state-transfer energy of the move, in picojoules.
    pub energy_pj: u64,
}

/// A successful [`RuntimeManager::start_with_reconfiguration`]: the new
/// application's handle plus what (if anything) had to move to admit it,
/// and how the committed plan scored under the policy's
/// [`ReconfigurationObjective`].
#[derive(Debug, Clone, PartialEq)]
pub struct Reconfiguration {
    /// Handle of the newly admitted application.
    pub handle: AppHandle,
    /// Migrations committed to make room (empty when plain admission
    /// succeeded).
    pub migrations: Vec<Migration>,
    /// Total modelled migration energy of the committed plan, in
    /// picojoules.
    pub migration_energy_pj: u64,
    /// Total per-period energy of every running application after the
    /// commit (the arriving application included), in picojoules.
    pub steady_state_energy_pj: u64,
    /// The committed plan's [`ReconfigurationObjective::score`]. For a
    /// plain (no-migration) admission this is the score of the new steady
    /// state with zero transfer energy.
    pub objective: u64,
    /// Objective scores of *every feasible plan enumerated*, in
    /// enumeration order — including plans the admission policy refused.
    /// Under [`AdmissionPolicy::AlwaysAdmit`] the committed plan's
    /// [`objective`](Reconfiguration::objective) is the minimum of this
    /// list; empty when plain admission succeeded.
    pub plan_objectives: Vec<u64>,
    /// Migration plans evaluated (0 when plain admission succeeded).
    pub plans_tried: u64,
    /// Victim re-mappings attempted across all plans, including plans that
    /// were not committed.
    pub migrations_attempted: u64,
    /// Feasible plans the [`AdmissionPolicy`] refused to commit.
    pub plans_refused: u64,
}

/// A failed [`RuntimeManager::start_with_reconfiguration`]: no plan within
/// the policy's bounds admitted the application. The ledger and every
/// running application are exactly as before the call.
#[derive(Debug, Clone, PartialEq)]
pub struct ReconfigurationFailure {
    /// The original (pre-search) admission failure.
    pub error: AdmissionError,
    /// Migration plans evaluated before giving up.
    pub plans_tried: u64,
    /// Victim re-mappings attempted across all evaluated plans.
    pub migrations_attempted: u64,
    /// Feasible plans found but refused by the [`AdmissionPolicy`] — when
    /// non-zero, the blocking was a *policy* decision, not a placement
    /// failure.
    pub plans_refused: u64,
}

impl fmt::Display for ReconfigurationFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "admission not recovered after {} migration plan(s): {}",
            self.plans_tried, self.error
        )
    }
}

impl std::error::Error for ReconfigurationFailure {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// A resource failure the manager can react to: one tile or one link.
///
/// Failures are *events*, not states — the corresponding state lives in
/// the ledger's health layer ([`PlatformState::is_tile_failed`] /
/// [`PlatformState::is_link_failed`]), which
/// [`RuntimeManager::evacuate`] sets and [`RuntimeManager::repair`]
/// clears.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FailureEvent {
    /// A tile failed: its compute slots, memory, cycles and NI bandwidth
    /// are quarantined. (Its *router* keeps forwarding — the mesh loses
    /// processing capacity, not connectivity.)
    Tile(TileId),
    /// A link failed: routes through it are invalid and its bandwidth is
    /// quarantined.
    Link(LinkId),
}

impl fmt::Display for FailureEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureEvent::Tile(t) => write!(f, "tile#{}", t.index()),
            FailureEvent::Link(l) => write!(f, "link#{}", l.index()),
        }
    }
}

/// How [`RuntimeManager::evacuate`] re-places the victims of a failure.
#[derive(Debug, Clone, PartialEq)]
pub struct EvacuationPolicy {
    /// First try re-maps that *pin* every process currently on a healthy
    /// tile in place, so only the processes that lost their tile move (for
    /// a link failure: nothing moves, routes are just re-planned around
    /// the link). When the pinned attempt finds no feasible mapping — or
    /// the admission policy refuses it — an unpinned attempt follows.
    pub pin_healthy: bool,
    /// Prices the state-transfer term of each relocation
    /// ([`CostModel::migration_cost`] over this model).
    pub energy: EnergyModel,
    /// Scores each committed relocation (reported per evacuated app).
    pub objective: ReconfigurationObjective,
    /// Whether a relocation spending a given migration energy may commit;
    /// refused relocations fall through to the next attempt or, when none
    /// remains, to eviction.
    pub admission: AdmissionPolicy,
}

impl Default for EvacuationPolicy {
    fn default() -> Self {
        EvacuationPolicy {
            pin_healthy: true,
            energy: EnergyModel::default(),
            objective: ReconfigurationObjective::default(),
            admission: AdmissionPolicy::AlwaysAdmit,
        }
    }
}

/// One victim successfully re-placed by [`RuntimeManager::evacuate`]; its
/// handle is unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvacuatedApp {
    /// The relocated application.
    pub handle: AppHandle,
    /// Processes whose tile changed (0 for a pure re-route around a
    /// failed link).
    pub processes_moved: usize,
    /// Modelled state-transfer energy of the relocation, in picojoules.
    pub migration_energy_pj: u64,
    /// The relocation's [`ReconfigurationObjective::score`] (post-commit
    /// steady-state energy of the running set, plus the weighted transfer
    /// term).
    pub objective: u64,
}

/// What one [`RuntimeManager::evacuate`] call did: which applications the
/// failure hit, which were re-placed, and which had to be *evicted* — a
/// terminal outcome distinct from blocking (the application was running
/// and lost its resources, it was not refused admission).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Evacuation {
    /// The failure that triggered the evacuation.
    pub failure: FailureEvent,
    /// Every running application the failure touched, in handle
    /// (admission) order — `evacuated` ∪ `evicted`, disjointly.
    pub victims: Vec<AppHandle>,
    /// Victims re-placed onto healthy resources (handles unchanged).
    pub evacuated: Vec<EvacuatedApp>,
    /// Victims that could not be re-placed under the policy: stopped, all
    /// their resources released.
    pub evicted: Vec<AppHandle>,
    /// Total modelled state-transfer energy of all relocations, in
    /// picojoules.
    pub migration_energy_pj: u64,
}

/// One admitted application: its specification and the mapping it runs
/// under.
///
/// The specification is held behind an [`Arc`] so admission paths that
/// draw the same spec repeatedly (catalogs, simulators) share one copy
/// instead of deep-cloning the graph and implementation library per
/// arrival.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunningApp {
    /// The application specification.
    pub spec: Arc<ApplicationSpec>,
    /// The committed mapping outcome.
    pub outcome: MappingOutcome,
}

/// Aggregate occupancy figures, for dashboards and admission policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Utilization {
    /// Compute slots in use across all tiles.
    pub used_slots: u32,
    /// Total compute slots of the platform.
    pub total_slots: u32,
    /// Bytes of tile memory in use (implementations + buffers).
    pub used_memory_bytes: u64,
    /// Total tile memory of the platform.
    pub total_memory_bytes: u64,
    /// Link bandwidth unavailable, words/second summed over directed
    /// links: claimed bandwidth, plus the full capacity of links currently
    /// quarantined by the health layer (a failed link has residual 0).
    pub used_link_bandwidth: u64,
    /// Total link bandwidth of the platform.
    pub total_link_bandwidth: u64,
    /// Number of running applications.
    pub running_apps: usize,
    /// Free compute slots in the largest contiguous free region (tiles
    /// with free slots whose routers are mesh-adjacent).
    pub largest_free_slot_region: u32,
    /// How fragmented the free compute capacity is, in permille: 0‰ when
    /// all free slots form one contiguous region, rising towards 1000‰ as
    /// they shatter into islands (see
    /// [`Fragmentation`](rtsm_platform::Fragmentation)). Defragmentation
    /// by migration ([`RuntimeManager::start_with_reconfiguration`]) is
    /// exactly the lever that drives this back down.
    pub fragmentation_permille: u32,
    /// Tiles currently quarantined by the health layer (failed, not yet
    /// repaired).
    pub failed_tiles: u32,
    /// Quarantined compute capacity in permille of the platform's total
    /// slots: 0‰ when fully healthy, 1000‰ when every tile has failed.
    /// Unlike the usage figures this counts *capacity* — a failed tile's
    /// slots are degraded whether or not they were in use.
    pub degraded_permille: u32,
}

impl Utilization {
    /// `true` when nothing is running and no resource is in use — the
    /// occupancy of a freshly initialised ledger. Simulation teardown and
    /// scenario replay use this to assert that commit/release are exact
    /// inverses over a whole run.
    pub fn is_idle(&self) -> bool {
        self.running_apps == 0
            && self.used_slots == 0
            && self.used_memory_bytes == 0
            && self.used_link_bandwidth == 0
    }
}

/// The stateful run-time manager (see the [module docs](self)).
///
/// Generic over the mapping algorithm; use a concrete algorithm type for
/// static dispatch or `Box<dyn MappingAlgorithm>` to choose at run time:
///
/// ```
/// use rtsm_core::algorithm::MappingAlgorithm;
/// use rtsm_core::mapper::SpatialMapper;
/// use rtsm_core::runtime::RuntimeManager;
/// use rtsm_platform::paper::paper_platform;
///
/// let algorithm: Box<dyn MappingAlgorithm> = Box::new(SpatialMapper::default());
/// let manager = RuntimeManager::new(paper_platform(), algorithm);
/// assert_eq!(manager.algorithm().name(), "hierarchical heuristic (paper)");
/// ```
#[derive(Debug, Clone)]
pub struct RuntimeManager<A: MappingAlgorithm> {
    platform: Platform,
    algorithm: A,
    state: PlatformState,
    running: BTreeMap<AppHandle, RunningApp>,
    next_handle: u64,
}

impl<A: MappingAlgorithm> RuntimeManager<A> {
    /// A manager over an empty `platform` using `algorithm` for admission.
    pub fn new(platform: Platform, algorithm: A) -> Self {
        let state = platform.initial_state();
        RuntimeManager {
            platform,
            algorithm,
            state,
            running: BTreeMap::new(),
            next_handle: 0,
        }
    }

    /// A manager starting from a pre-occupied ledger (e.g. resources held
    /// by components outside this manager's control).
    pub fn with_state(platform: Platform, algorithm: A, state: PlatformState) -> Self {
        RuntimeManager {
            platform,
            algorithm,
            state,
            running: BTreeMap::new(),
            next_handle: 0,
        }
    }

    /// The managed platform.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The admission algorithm.
    pub fn algorithm(&self) -> &A {
        &self.algorithm
    }

    /// The current occupancy ledger.
    pub fn state(&self) -> &PlatformState {
        &self.state
    }

    /// Attempts to start `spec`: maps it against the **actual** current
    /// occupancy and, if a feasible mapping exists, commits its
    /// reservations atomically and returns a handle for later
    /// [`stop`](RuntimeManager::stop).
    ///
    /// On any error the ledger is unchanged (rollback-on-failure).
    ///
    /// The stored record keeps what the lifecycle needs (mapping, routes,
    /// buffers, scores); the search trace and composed CSDF graph are
    /// dropped so a long-lived manager does not accumulate per-admission
    /// search logs. Map with the algorithm directly when those are wanted.
    ///
    /// # Errors
    ///
    /// * [`AdmissionError::Rejected`] — no feasible mapping right now;
    /// * [`AdmissionError::CommitFailed`] — the mapping could not be
    ///   committed (only possible if the ledger was mutated externally).
    pub fn start(
        &mut self,
        spec: impl Into<Arc<ApplicationSpec>>,
    ) -> Result<AppHandle, AdmissionError> {
        let _span = obs::span(obs::Span::Admission);
        let spec: Arc<ApplicationSpec> = spec.into();
        let mut outcome = self
            .algorithm
            .map(&spec, &self.platform, &self.state)
            .map_err(AdmissionError::Rejected)?;
        // `MappingOutcome::commit` rolls the ledger back on failure.
        outcome
            .commit(&spec, &self.platform, &mut self.state)
            .map_err(AdmissionError::CommitFailed)?;
        outcome.trace = None;
        outcome.csdf = None;
        let handle = AppHandle(self.next_handle);
        self.next_handle += 1;
        self.running.insert(handle, RunningApp { spec, outcome });
        Ok(handle)
    }

    /// Stops the application behind `handle`, releasing every resource its
    /// admission committed, and returns its record.
    ///
    /// # Errors
    ///
    /// * [`RuntimeError::UnknownHandle`] — `handle` is not running;
    /// * [`RuntimeError::ReleaseFailed`] — the ledger no longer holds the
    ///   committed reservations (external mutation). The release is rolled
    ///   back and the application stays registered, so the ledger is
    ///   exactly as before the call.
    pub fn stop(&mut self, handle: AppHandle) -> Result<RunningApp, RuntimeError> {
        let app = self
            .running
            .get(&handle)
            .ok_or(RuntimeError::UnknownHandle(handle))?;
        app.outcome
            .release(&app.spec, &self.platform, &mut self.state)
            .map_err(RuntimeError::ReleaseFailed)?;
        Ok(self.running.remove(&handle).expect("handle checked above"))
    }

    /// Re-maps the running application behind `handle` under
    /// `constraints`, atomically: inside one transaction its current
    /// reservations are released *first* (so the new mapping may reuse its
    /// own freed resources), the algorithm maps the spec against the freed
    /// occupancy, and the new mapping's reservations are committed. On any
    /// failure the transaction aborts and the ledger — including the
    /// application's original reservations and routes — is restored
    /// exactly; the application keeps running under its old mapping.
    ///
    /// Returns the *previous* outcome, so callers can diff placements or
    /// account migration costs.
    ///
    /// # Errors
    ///
    /// * [`RuntimeError::UnknownHandle`] — `handle` is not running;
    /// * [`RuntimeError::Admission`] — no feasible mapping under
    ///   `constraints` (the application keeps its old mapping), or the
    ///   re-commit failed;
    /// * [`RuntimeError::ReleaseFailed`] — the ledger no longer holds the
    ///   committed reservations (external mutation).
    pub fn remap(
        &mut self,
        handle: AppHandle,
        constraints: &MappingConstraints,
    ) -> Result<MappingOutcome, RuntimeError> {
        let _span = obs::span(obs::Span::Remap);
        let spec = self
            .running
            .get(&handle)
            .ok_or(RuntimeError::UnknownHandle(handle))?
            .spec
            .clone();
        self.replace_mapping(handle, spec, constraints)
    }

    /// The shared transactional core of [`RuntimeManager::remap`] and
    /// [`RuntimeManager::switch`]: inside one transaction the running
    /// application's reservations are released *first* (so the new mapping
    /// may reuse its own freed resources), `spec` is mapped against the
    /// freed occupancy under `constraints`, and the new reservations are
    /// committed. On success the record holds `spec` and the new outcome
    /// (the previous outcome is returned); on any failure the transaction
    /// aborts and the application keeps running exactly as before.
    fn replace_mapping(
        &mut self,
        handle: AppHandle,
        spec: Arc<ApplicationSpec>,
        constraints: &MappingConstraints,
    ) -> Result<MappingOutcome, RuntimeError> {
        let app = self
            .running
            .get(&handle)
            .ok_or(RuntimeError::UnknownHandle(handle))?;
        let mut tx = PlatformTransaction::begin(&self.platform, &mut self.state);
        app.outcome
            .stage_release(&app.spec, &mut tx)
            .map_err(RuntimeError::ReleaseFailed)?; // tx drop restores
        let mut outcome = self
            .algorithm
            .map_constrained(&spec, &self.platform, tx.state(), constraints)
            .map_err(|e| RuntimeError::Admission(AdmissionError::Rejected(e)))?;
        outcome
            .stage_commit(&spec, &mut tx)
            .map_err(|e| RuntimeError::Admission(AdmissionError::CommitFailed(e)))?;
        tx.commit();
        outcome.trace = None;
        outcome.csdf = None;
        let record = self.running.get_mut(&handle).expect("checked above");
        record.spec = spec;
        Ok(std::mem::replace(&mut record.outcome, outcome))
    }

    /// Attempts to start `spec`; when plain admission fails, searches
    /// bounded migration plans that *defragment* the platform: up to
    /// [`ReconfigurationPolicy::max_migrations`] running applications —
    /// enumerated cheapest-to-move first, ranked by
    /// [`ReconfigurationPolicy::cost_model`] — are released inside one
    /// transaction, the arriving application is mapped against the freed
    /// occupancy, and every victim is re-mapped after it.
    ///
    /// Unlike a first-feasible search, *every* plan within
    /// [`ReconfigurationPolicy::max_plans`] is evaluated (staged in a
    /// transaction that is then aborted) and scored by the policy's
    /// [`ReconfigurationObjective`]; the **cheapest** feasible plan the
    /// [`AdmissionPolicy`] accepts is then re-staged and committed
    /// all-or-nothing. Evaluation never re-runs the mapping algorithm at
    /// commit time — the staged outcomes are replayed verbatim — so even
    /// randomized algorithms commit exactly the plan that was scored.
    ///
    /// # Errors
    ///
    /// [`ReconfigurationFailure`] when no plan within the policy's bounds
    /// both admits the application and passes the admission policy; it
    /// carries the original [`AdmissionError`] plus the search effort
    /// spent and how many feasible plans the policy refused.
    pub fn start_with_reconfiguration(
        &mut self,
        spec: impl Into<Arc<ApplicationSpec>>,
        policy: &ReconfigurationPolicy,
    ) -> Result<Reconfiguration, ReconfigurationFailure> {
        let spec: Arc<ApplicationSpec> = spec.into();
        let error = match self.start(spec.clone()) {
            Ok(handle) => {
                let steady_state_energy_pj = self.running_energy_pj();
                return Ok(Reconfiguration {
                    handle,
                    migrations: Vec::new(),
                    migration_energy_pj: 0,
                    steady_state_energy_pj,
                    objective: policy.objective.score(steady_state_energy_pj, 0),
                    plan_objectives: Vec::new(),
                    plans_tried: 0,
                    migrations_attempted: 0,
                    plans_refused: 0,
                });
            }
            Err(error) => error,
        };
        let mut plans_tried = 0u64;
        let mut migrations_attempted = 0u64;
        let mut plans_refused = 0u64;
        if matches!(error, AdmissionError::CommitFailed(_)) || policy.max_migrations == 0 {
            return Err(ReconfigurationFailure {
                error,
                plans_tried: 0,
                migrations_attempted: 0,
                plans_refused: 0,
            });
        }

        // Candidate victims, cheapest move first; ties break on handle so
        // the search order — and therefore every fixed-seed simulation —
        // is deterministic.
        let candidates: Vec<(u64, AppHandle)> = {
            let mut c: Vec<(u64, AppHandle)> = self
                .running
                .iter()
                .map(|(h, app)| {
                    (
                        policy.cost_model.assignment_cost(
                            &app.outcome.mapping,
                            &app.spec,
                            &self.platform,
                        ),
                        *h,
                    )
                })
                .collect();
            c.sort_unstable();
            c
        };
        let current_total_energy_pj = self.running_energy_pj();

        // Plans: single migrations cheapest-first, then pairs, … up to
        // `max_migrations` victims, `max_plans` plans overall. Every plan
        // is evaluated; ties on the objective keep the earliest plan, so
        // the choice is deterministic.
        let mut best: Option<PlanCandidate> = None;
        let mut plan_objectives = Vec::new();
        'sizes: for size in 1..=policy.max_migrations.min(candidates.len()) {
            let mut indices: Vec<usize> = (0..size).collect();
            loop {
                if plans_tried >= policy.max_plans as u64 {
                    break 'sizes;
                }
                plans_tried += 1;
                let victims: Vec<(u64, AppHandle)> =
                    indices.iter().map(|&i| candidates[i]).collect();
                if let Some(candidate) = self.evaluate_migration_plan(
                    &spec,
                    victims,
                    policy,
                    current_total_energy_pj,
                    &mut migrations_attempted,
                ) {
                    plan_objectives.push(candidate.objective);
                    if !policy
                        .admission
                        .admits(candidate.migration_energy_pj, candidate.admitted_energy_pj)
                    {
                        plans_refused += 1;
                    } else if best
                        .as_ref()
                        .is_none_or(|b| candidate.objective < b.objective)
                    {
                        best = Some(candidate);
                    }
                }
                if !next_combination(&mut indices, candidates.len()) {
                    break;
                }
            }
        }
        match best {
            Some(plan) => Ok(self.commit_migration_plan(
                &spec,
                plan,
                plan_objectives,
                plans_tried,
                migrations_attempted,
                plans_refused,
            )),
            None => Err(ReconfigurationFailure {
                error,
                plans_tried,
                migrations_attempted,
                plans_refused,
            }),
        }
    }

    /// Evaluates one migration plan: stages every release, the new
    /// admission, and every victim re-map into a transaction, scores the
    /// result, then **aborts** the transaction (the ledger is untouched).
    /// Returns `None` when any step fails.
    fn evaluate_migration_plan(
        &mut self,
        spec: &Arc<ApplicationSpec>,
        victims: Vec<(u64, AppHandle)>,
        policy: &ReconfigurationPolicy,
        current_total_energy_pj: u64,
        migrations_attempted: &mut u64,
    ) -> Option<PlanCandidate> {
        let _span = obs::span(obs::Span::PlanEval);
        let migration_pricing = CostModel::Energy(policy.energy);
        let mut tx = PlatformTransaction::begin(&self.platform, &mut self.state);
        // Release every victim first, so both the arriving application and
        // the re-mapped victims can use the freed resources.
        for &(_, victim) in &victims {
            let app = self.running.get(&victim).expect("plan names running apps");
            app.outcome.stage_release(&app.spec, &mut tx).ok()?;
        }
        let mut new_outcome = self
            .algorithm
            .map_constrained(
                spec,
                &self.platform,
                tx.state(),
                &MappingConstraints::none(),
            )
            .ok()?;
        new_outcome.stage_commit(spec, &mut tx).ok()?;
        new_outcome.trace = None;
        new_outcome.csdf = None;
        // Re-place each victim against what remains.
        let mut moved: Vec<PlannedMigration> = Vec::with_capacity(victims.len());
        let mut migration_energy_pj = 0u64;
        let mut steady_state_energy_pj =
            current_total_energy_pj.saturating_add(new_outcome.energy_pj);
        for &(move_cost, victim) in &victims {
            *migrations_attempted += 1;
            let app = self.running.get(&victim).expect("plan names running apps");
            let mut outcome = self
                .algorithm
                .map_constrained(
                    &app.spec,
                    &self.platform,
                    tx.state(),
                    &MappingConstraints::none(),
                )
                .ok()?;
            outcome.stage_commit(&app.spec, &mut tx).ok()?;
            outcome.trace = None;
            outcome.csdf = None;
            let (processes_moved, energy_pj) = migration_pricing.migration_cost(
                &app.spec,
                &self.platform,
                &app.outcome.mapping,
                &outcome.mapping,
            );
            migration_energy_pj += energy_pj;
            steady_state_energy_pj = steady_state_energy_pj
                .saturating_sub(app.outcome.energy_pj)
                .saturating_add(outcome.energy_pj);
            moved.push(PlannedMigration {
                handle: victim,
                move_cost,
                processes_moved,
                energy_pj,
                outcome,
            });
        }
        // Evaluation only: dropping the transaction aborts every staged
        // operation, restoring the ledger exactly.
        drop(tx);
        let admitted_energy_pj = new_outcome.energy_pj;
        Some(PlanCandidate {
            victims,
            new_outcome,
            moved,
            migration_energy_pj,
            steady_state_energy_pj,
            admitted_energy_pj,
            objective: policy
                .objective
                .score(steady_state_energy_pj, migration_energy_pj),
        })
    }

    /// Replays the winning plan's staged outcomes into a fresh transaction
    /// and commits it, updating every record. The ledger has not changed
    /// since the plan was evaluated (evaluation aborts its transaction and
    /// the search never mutates state), so re-staging cannot fail.
    fn commit_migration_plan(
        &mut self,
        spec: &Arc<ApplicationSpec>,
        plan: PlanCandidate,
        plan_objectives: Vec<u64>,
        plans_tried: u64,
        migrations_attempted: u64,
        plans_refused: u64,
    ) -> Reconfiguration {
        let mut tx = PlatformTransaction::begin(&self.platform, &mut self.state);
        for &(_, victim) in &plan.victims {
            let app = self.running.get(&victim).expect("plan names running apps");
            app.outcome
                .stage_release(&app.spec, &mut tx)
                .expect("re-staging an evaluated plan's release cannot fail");
        }
        plan.new_outcome
            .stage_commit(spec, &mut tx)
            .expect("re-staging an evaluated plan's admission cannot fail");
        for migration in &plan.moved {
            let app = self
                .running
                .get(&migration.handle)
                .expect("plan names running apps");
            migration
                .outcome
                .stage_commit(&app.spec, &mut tx)
                .expect("re-staging an evaluated plan's re-map cannot fail");
        }
        tx.commit();

        let handle = AppHandle(self.next_handle);
        self.next_handle += 1;
        self.running.insert(
            handle,
            RunningApp {
                spec: spec.clone(),
                outcome: plan.new_outcome,
            },
        );
        let mut migrations = Vec::with_capacity(plan.moved.len());
        for migration in plan.moved {
            let record = self
                .running
                .get_mut(&migration.handle)
                .expect("victim still runs");
            record.outcome = migration.outcome;
            // A victim whose re-map landed on exactly its old tiles did not
            // migrate (the arriving app fit into space freed by the others):
            // its outcome is refreshed but no migration is reported.
            if migration.processes_moved > 0 {
                migrations.push(Migration {
                    handle: migration.handle,
                    move_cost: migration.move_cost,
                    processes_moved: migration.processes_moved,
                    energy_pj: migration.energy_pj,
                });
            }
        }
        Reconfiguration {
            handle,
            migrations,
            migration_energy_pj: plan.migration_energy_pj,
            steady_state_energy_pj: plan.steady_state_energy_pj,
            objective: plan.objective,
            plan_objectives,
            plans_tried,
            migrations_attempted,
            plans_refused,
        }
    }

    /// Switches the application behind `handle` to a **new specification**
    /// atomically: inside one transaction its current reservations are
    /// released first (so the new configuration may reuse its own freed
    /// resources), the new spec is mapped against the freed occupancy, and
    /// the new mapping's reservations are committed. The handle stays
    /// valid. On any failure the transaction aborts and the application
    /// *keeps running under its old specification and mapping* — a blocked
    /// mode switch is a switching loss, not an eviction.
    ///
    /// Returns the *previous* outcome, so callers can diff placements or
    /// account switching costs.
    ///
    /// # Errors
    ///
    /// * [`RuntimeError::UnknownHandle`] — `handle` is not running;
    /// * [`RuntimeError::Admission`] — the new configuration has no
    ///   feasible mapping right now (the old one keeps running), or the
    ///   re-commit failed;
    /// * [`RuntimeError::ReleaseFailed`] — the ledger no longer holds the
    ///   committed reservations (external mutation).
    pub fn switch(
        &mut self,
        handle: AppHandle,
        spec: impl Into<Arc<ApplicationSpec>>,
    ) -> Result<MappingOutcome, RuntimeError> {
        let _span = obs::span(obs::Span::Switch);
        self.replace_mapping(handle, spec.into(), &MappingConstraints::none())
    }

    /// Reacts to a resource failure: quarantines the failed tile or link
    /// in the ledger's health layer, identifies every running application
    /// the failure touches (a process or buffer on the failed tile, or a
    /// route through the failed link), and re-places each victim on the
    /// healthy remainder of the platform.
    ///
    /// Victims are processed in handle (admission) order, each inside its
    /// own transaction: the victim's reservations are released, the
    /// algorithm re-maps it under auto-derived [`MappingConstraints`]
    /// (every currently-failed tile excluded; with
    /// [`EvacuationPolicy::pin_healthy`], processes on healthy tiles first
    /// pinned in place), the relocation is priced through
    /// [`CostModel::migration_cost`] and gated by the policy's
    /// [`AdmissionPolicy`]. If no attempt commits, the victim is *evicted*
    /// — stopped, its resources released — which is a terminal outcome
    /// distinct from blocking.
    ///
    /// # Failure windows
    ///
    /// The manager serializes all ledger mutation behind `&mut self`, so a
    /// failure cannot be injected *between* plan evaluation and commit: an
    /// `evacuate` call observes the ledger either entirely before or
    /// entirely after any admission. Within the call, each victim's
    /// release + re-map + commit is one [`PlatformTransaction`]; a
    /// relocation that fails partway (infeasible re-map, commit refusal,
    /// admission-policy veto) aborts its transaction and the victim's
    /// original reservations are restored **exactly — including onto the
    /// failed resources** (rollback bypasses the health check), so the
    /// subsequent eviction releases precisely what admission committed.
    /// Victims already relocated by the same call keep their new
    /// placements; there is no cross-victim rollback, because a committed
    /// relocation is already a complete, consistent state.
    ///
    /// Idempotent on the health layer: evacuating an already-failed
    /// resource re-runs victim identification (normally finding none).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::ReleaseFailed`] only — the ledger no longer holds a
    /// victim's committed reservations (external mutation). Infeasible
    /// re-maps are not errors; they become evictions.
    pub fn evacuate(
        &mut self,
        failure: FailureEvent,
        policy: &EvacuationPolicy,
    ) -> Result<Evacuation, RuntimeError> {
        let _span = obs::span(obs::Span::Evacuate);
        match failure {
            FailureEvent::Tile(tile) => self.state.fail_tile(tile),
            FailureEvent::Link(link) => self.state.fail_link(link),
        };
        let victims: Vec<AppHandle> = self
            .running
            .iter()
            .filter(|(_, app)| Self::touched_by(app, failure))
            .map(|(handle, _)| *handle)
            .collect();
        let mut evacuation = Evacuation {
            failure,
            victims: victims.clone(),
            evacuated: Vec::new(),
            evicted: Vec::new(),
            migration_energy_pj: 0,
        };
        for handle in victims {
            let current_energy_pj = self.running_energy_pj();
            let unpinned = self.failure_constraints();
            let mut relocated = None;
            if policy.pin_healthy {
                let pinned = self.pin_healthy_constraints(handle);
                relocated = self.try_relocate(handle, &pinned, policy, current_energy_pj)?;
            }
            if relocated.is_none() {
                relocated = self.try_relocate(handle, &unpinned, policy, current_energy_pj)?;
            }
            match relocated {
                Some(app) => {
                    evacuation.migration_energy_pj += app.migration_energy_pj;
                    evacuation.evacuated.push(app);
                }
                None => {
                    self.stop(handle)?;
                    evacuation.evicted.push(handle);
                }
            }
        }
        Ok(evacuation)
    }

    /// Clears a failure from the ledger's health layer, making the
    /// resource claimable again. Returns `true` if the resource was failed
    /// (the call changed state). Repair never re-places applications —
    /// evacuated victims stay where evacuation put them.
    pub fn repair(&mut self, failure: FailureEvent) -> bool {
        match failure {
            FailureEvent::Tile(tile) => self.state.repair_tile(tile),
            FailureEvent::Link(link) => self.state.repair_link(link),
        }
    }

    /// True while `failure`'s resource is quarantined.
    pub fn is_failed(&self, failure: FailureEvent) -> bool {
        match failure {
            FailureEvent::Tile(tile) => self.state.is_tile_failed(tile),
            FailureEvent::Link(link) => self.state.is_link_failed(link),
        }
    }

    /// Whether `app`'s committed mapping holds resources the failure
    /// quarantines: a process or buffer on the failed tile, or a routed
    /// path through the failed link.
    fn touched_by(app: &RunningApp, failure: FailureEvent) -> bool {
        match failure {
            FailureEvent::Tile(tile) => {
                app.outcome
                    .mapping
                    .assignments()
                    .any(|(_, assignment)| assignment.tile == tile)
                    || app.outcome.buffers.iter().any(|buffer| buffer.tile == tile)
                    // Routes terminating at the tile hold network-interface
                    // claims there even when no process is assigned to it
                    // (fixed Source/Sink endpoints).
                    || app.outcome.mapping.routes().any(|(_, binding)| match binding {
                        RouteBinding::Path(path) => path.from == tile || path.to == tile,
                        RouteBinding::SameTile => false,
                    })
            }
            FailureEvent::Link(link) => {
                app.outcome
                    .mapping
                    .routes()
                    .any(|(_, binding)| match binding {
                        RouteBinding::Path(path) => path.links.contains(&link),
                        RouteBinding::SameTile => false,
                    })
            }
        }
    }

    /// Constraints every evacuation re-map runs under: all currently
    /// failed tiles excluded. (Failed links need no constraint — their
    /// residual is 0, so routing cannot use them.)
    fn failure_constraints(&self) -> MappingConstraints {
        let mut constraints = MappingConstraints::none();
        for (tile, _) in self.platform.tiles() {
            if self.state.is_tile_failed(tile) {
                constraints = constraints.exclude_tile(tile);
            }
        }
        constraints
    }

    /// [`RuntimeManager::failure_constraints`] plus a pin for every one of
    /// the victim's processes that currently sits on a healthy tile, so
    /// the first relocation attempt moves only what the failure displaced.
    fn pin_healthy_constraints(&self, handle: AppHandle) -> MappingConstraints {
        let mut constraints = self.failure_constraints();
        let app = self.running.get(&handle).expect("victim is running");
        for (process, assignment) in app.outcome.mapping.assignments() {
            if !self.state.is_tile_failed(assignment.tile) {
                constraints = constraints.pin(process, assignment.tile);
            }
        }
        constraints
    }

    /// One relocation attempt: inside one transaction the victim's
    /// reservations are released, its spec re-mapped under `constraints`,
    /// and the new reservations committed — but only if the priced
    /// migration passes the policy's admission gate. Any refusal or
    /// infeasibility aborts the transaction (exact rollback, health checks
    /// bypassed for the restore) and returns `Ok(None)`.
    fn try_relocate(
        &mut self,
        handle: AppHandle,
        constraints: &MappingConstraints,
        policy: &EvacuationPolicy,
        current_energy_pj: u64,
    ) -> Result<Option<EvacuatedApp>, RuntimeError> {
        let app = self.running.get(&handle).expect("victim is running");
        let pricing = CostModel::Energy(policy.energy);
        let mut tx = PlatformTransaction::begin(&self.platform, &mut self.state);
        app.outcome
            .stage_release(&app.spec, &mut tx)
            .map_err(RuntimeError::ReleaseFailed)?; // tx drop restores
        let Ok(mut outcome) =
            self.algorithm
                .map_constrained(&app.spec, &self.platform, tx.state(), constraints)
        else {
            return Ok(None);
        };
        if outcome.stage_commit(&app.spec, &mut tx).is_err() {
            return Ok(None);
        }
        let (processes_moved, migration_energy_pj) = pricing.migration_cost(
            &app.spec,
            &self.platform,
            &app.outcome.mapping,
            &outcome.mapping,
        );
        if !policy
            .admission
            .admits(migration_energy_pj, outcome.energy_pj)
        {
            return Ok(None);
        }
        let steady_state_energy_pj = current_energy_pj
            .saturating_sub(app.outcome.energy_pj)
            .saturating_add(outcome.energy_pj);
        let objective = policy
            .objective
            .score(steady_state_energy_pj, migration_energy_pj);
        tx.commit();
        outcome.trace = None;
        outcome.csdf = None;
        let record = self.running.get_mut(&handle).expect("victim is running");
        record.outcome = outcome;
        Ok(Some(EvacuatedApp {
            handle,
            processes_moved,
            migration_energy_pj,
            objective,
        }))
    }

    /// Stops every running application in handle (admission) order,
    /// releasing all their resources, and returns the stopped records.
    /// After a successful call the ledger holds only what was committed
    /// outside this manager (for [`RuntimeManager::new`] managers: nothing,
    /// so [`Utilization::is_idle`] holds).
    ///
    /// # Errors
    ///
    /// [`StopAllError`] if a release fails (external ledger mutation).
    /// Applications stopped before the failure stay stopped and their
    /// records are carried in the error; the failing one and all later
    /// ones keep running.
    pub fn stop_all(&mut self) -> Result<Vec<(AppHandle, RunningApp)>, StopAllError> {
        let handles: Vec<AppHandle> = self.running.keys().copied().collect();
        let mut stopped = Vec::with_capacity(handles.len());
        for handle in handles {
            match self.stop(handle) {
                Ok(record) => stopped.push((handle, record)),
                Err(error) => return Err(StopAllError { stopped, error }),
            }
        }
        Ok(stopped)
    }

    /// The running applications in handle (admission) order.
    pub fn running(&self) -> impl Iterator<Item = (AppHandle, &RunningApp)> {
        self.running.iter().map(|(h, app)| (*h, app))
    }

    /// The record of one running application.
    pub fn get(&self, handle: AppHandle) -> Option<&RunningApp> {
        self.running.get(&handle)
    }

    /// Number of running applications.
    pub fn n_running(&self) -> usize {
        self.running.len()
    }

    /// Total energy per period of all running applications, in picojoules.
    pub fn running_energy_pj(&self) -> u64 {
        self.running.values().map(|app| app.outcome.energy_pj).sum()
    }

    /// Aggregate occupancy of the managed platform, including the
    /// fragmentation of its free compute capacity.
    pub fn utilization(&self) -> Utilization {
        let fragmentation = self.state.fragmentation(&self.platform);
        let mut util = Utilization {
            used_slots: 0,
            total_slots: 0,
            used_memory_bytes: 0,
            total_memory_bytes: 0,
            used_link_bandwidth: 0,
            total_link_bandwidth: 0,
            running_apps: self.running.len(),
            largest_free_slot_region: fragmentation.largest_free_region_slots,
            fragmentation_permille: fragmentation.fragmentation_permille,
            failed_tiles: self.state.failed_tile_count(),
            degraded_permille: 0,
        };
        for (tile, spec) in self.platform.tiles() {
            util.used_slots += self.state.used_slots(tile);
            util.total_slots += spec.compute_slots;
            util.used_memory_bytes += self.state.used_memory(tile);
            util.total_memory_bytes += spec.memory_bytes;
        }
        for (link, spec) in self.platform.links() {
            util.total_link_bandwidth += spec.capacity;
            util.used_link_bandwidth +=
                spec.capacity - self.state.residual_link(&self.platform, link);
        }
        util.degraded_permille = (self.state.failed_slot_capacity(&self.platform) * 1000)
            .checked_div(util.total_slots)
            .unwrap_or(0);
        util
    }

    /// Consumes the manager, returning the final ledger and the records of
    /// the applications still running.
    pub fn into_parts(self) -> (PlatformState, Vec<(AppHandle, RunningApp)>) {
        (self.state, self.running.into_iter().collect())
    }
}

/// Advances `indices` to the next lexicographic `k`-combination of
/// `0..n`. Returns `false` when exhausted.
fn next_combination(indices: &mut [usize], n: usize) -> bool {
    let k = indices.len();
    let mut i = k;
    while i > 0 {
        i -= 1;
        if indices[i] < n - (k - i) {
            indices[i] += 1;
            for j in i + 1..k {
                indices[j] = indices[j - 1] + 1;
            }
            return true;
        }
    }
    false
}

/// One fully evaluated migration plan: everything needed to score it
/// against the other plans and — if it wins — replay its staged outcomes
/// into a committing transaction without re-running the algorithm.
#[derive(Debug, Clone)]
struct PlanCandidate {
    /// The plan's victims `(move_cost, handle)` in release order.
    victims: Vec<(u64, AppHandle)>,
    /// The arriving application's mapping under this plan.
    new_outcome: MappingOutcome,
    /// Each victim's re-map, in the order it was staged.
    moved: Vec<PlannedMigration>,
    /// Total state-transfer energy of the plan, in picojoules.
    migration_energy_pj: u64,
    /// Total per-period energy of the running set after the plan.
    steady_state_energy_pj: u64,
    /// The arriving application's per-period energy under this plan (what
    /// [`AdmissionPolicy::AmortizedPayback`] amortizes against).
    admitted_energy_pj: u64,
    /// The plan's [`ReconfigurationObjective::score`].
    objective: u64,
}

/// One victim's evaluated re-map within a [`PlanCandidate`].
#[derive(Debug, Clone)]
struct PlannedMigration {
    handle: AppHandle,
    move_cost: u64,
    processes_moved: usize,
    energy_pj: u64,
    outcome: MappingOutcome,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::SpatialMapper;
    use rtsm_app::hiperlan2::{hiperlan2_receiver, Hiperlan2Mode};
    use rtsm_platform::paper::paper_platform;

    fn manager() -> RuntimeManager<SpatialMapper> {
        RuntimeManager::new(paper_platform(), SpatialMapper::default())
    }

    #[test]
    fn start_stop_restores_the_empty_ledger() {
        let mut m = manager();
        let before = m.state().clone();
        let h = m.start(hiperlan2_receiver(Hiperlan2Mode::Qpsk34)).unwrap();
        assert_ne!(m.state(), &before, "admission must claim resources");
        let record = m.stop(h).unwrap();
        assert_eq!(
            m.state(),
            &before,
            "stop must release exactly what start claimed"
        );
        assert_eq!(
            record.spec.name,
            hiperlan2_receiver(Hiperlan2Mode::Qpsk34).name
        );
        assert_eq!(m.n_running(), 0);
    }

    #[test]
    fn handles_stay_valid_when_other_apps_stop() {
        // Two light modes fit together on the paper platform? They do not
        // (two MONTIUMs), so use start/stop interleaving on one app plus
        // handle uniqueness checks.
        let mut m = manager();
        let h0 = m.start(hiperlan2_receiver(Hiperlan2Mode::Bpsk12)).unwrap();
        m.stop(h0).unwrap();
        let h1 = m.start(hiperlan2_receiver(Hiperlan2Mode::Qpsk34)).unwrap();
        assert_ne!(h0, h1, "handles are never reused");
        assert!(matches!(
            m.stop(h0),
            Err(RuntimeError::UnknownHandle(stale)) if stale == h0
        ));
        assert_eq!(m.n_running(), 1);
        m.stop(h1).unwrap();
    }

    #[test]
    fn rejection_leaves_the_ledger_untouched() {
        let mut m = manager();
        let _h = m.start(hiperlan2_receiver(Hiperlan2Mode::Qpsk34)).unwrap();
        let occupied = m.state().clone();
        let err = m
            .start(hiperlan2_receiver(Hiperlan2Mode::Qpsk34))
            .unwrap_err();
        assert!(matches!(err, AdmissionError::Rejected(_)));
        assert_eq!(m.state(), &occupied);
        assert_eq!(m.n_running(), 1);
    }

    #[test]
    fn utilization_tracks_admissions() {
        let mut m = manager();
        let idle = m.utilization();
        assert_eq!(idle.used_slots, 0);
        assert_eq!(idle.running_apps, 0);
        let h = m.start(hiperlan2_receiver(Hiperlan2Mode::Qpsk34)).unwrap();
        let busy = m.utilization();
        assert!(busy.used_slots >= 4, "four processes hold slots");
        assert!(busy.used_memory_bytes > 0);
        assert!(busy.used_link_bandwidth > 0);
        assert_eq!(busy.running_apps, 1);
        m.stop(h).unwrap();
        assert_eq!(m.utilization(), idle);
    }

    #[test]
    fn stop_all_drains_to_an_idle_ledger() {
        let mut m = manager();
        assert!(m.utilization().is_idle());
        let before = m.state().clone();
        m.start(hiperlan2_receiver(Hiperlan2Mode::Qpsk34)).unwrap();
        assert!(!m.utilization().is_idle());
        let stopped = m.stop_all().expect("releases never fail in-manager");
        assert_eq!(stopped.len(), 1);
        assert_eq!(m.n_running(), 0);
        assert_eq!(m.state(), &before);
        assert!(m.utilization().is_idle());
        // Idempotent on an empty manager.
        assert!(m.stop_all().unwrap().is_empty());
    }

    #[test]
    fn admission_errors_expose_their_kind() {
        let mut m = manager();
        let h = m.start(hiperlan2_receiver(Hiperlan2Mode::Qpsk34)).unwrap();
        let rejected = m
            .start(hiperlan2_receiver(Hiperlan2Mode::Qpsk34))
            .unwrap_err();
        assert!(matches!(rejected.kind(), AdmissionErrorKind::Rejected(_)));
        if let AdmissionError::Rejected(map_err) = &rejected {
            assert_eq!(
                rejected.kind(),
                AdmissionErrorKind::Rejected(map_err.kind())
            );
        }
        m.stop(h).unwrap();
        let stale = m.stop(h).unwrap_err();
        assert_eq!(stale.kind(), RuntimeErrorKind::UnknownHandle);
        assert!(
            !matches!(stale, RuntimeError::Admission(_)),
            "stopping an unknown handle is a runtime fault, not an admission error"
        );
    }

    #[test]
    fn works_boxed_over_dyn_algorithm() {
        let algorithm: Box<dyn MappingAlgorithm> = Box::new(SpatialMapper::default());
        let mut m = RuntimeManager::new(paper_platform(), algorithm);
        let h = m.start(hiperlan2_receiver(Hiperlan2Mode::Qpsk34)).unwrap();
        assert_eq!(m.n_running(), 1);
        m.stop(h).unwrap();
    }

    // --- Remapping and defragmentation ----------------------------------
    //
    // The engineered scenario: two 2-slot ARMs with 64 KiB each. Light
    // single-process applications take 24 KiB, a heavy one 48 KiB. Churn
    // leaves one light app on *each* ARM: 40 KiB free per tile — enough
    // total for the heavy app but fragmented. Migrating one light app onto
    // the other's tile frees a whole ARM and recovers the admission.

    fn defrag_platform() -> rtsm_platform::Platform {
        use rtsm_platform::{Coord, PlatformBuilder, TileKind};
        PlatformBuilder::mesh(4, 1)
            .tile_defaults(200, 2, 64 * 1024, 200_000_000)
            .tile("A/D", TileKind::AdcSource, Coord { x: 0, y: 0 })
            .tile("ARM-a", TileKind::Arm, Coord { x: 1, y: 0 })
            .tile("ARM-b", TileKind::Arm, Coord { x: 2, y: 0 })
            .tile("Sink", TileKind::Sink, Coord { x: 3, y: 0 })
            .build()
            .unwrap()
    }

    fn pipe_app(name: &str, memory_bytes: u64) -> ApplicationSpec {
        use rtsm_app::{Endpoint, Implementation, ImplementationLibrary, ProcessGraph, QosSpec};
        use rtsm_dataflow::PhaseVec;
        use rtsm_platform::TileKind;
        let mut graph = ProcessGraph::new();
        let p = graph.add_process("Stage");
        graph
            .add_channel(Endpoint::StreamInput, Endpoint::Process(p), 16)
            .unwrap();
        graph
            .add_channel(Endpoint::Process(p), Endpoint::StreamOutput, 16)
            .unwrap();
        let mut library = ImplementationLibrary::new();
        library.register(
            p,
            Implementation::simple(
                format!("{name} @ ARM"),
                TileKind::Arm,
                PhaseVec::from_slice(&[8, 60, 8]),
                PhaseVec::from_slice(&[16, 0, 0]),
                PhaseVec::from_slice(&[0, 0, 16]),
                5_000,
                memory_bytes,
            ),
        );
        ApplicationSpec {
            name: name.into(),
            graph,
            qos: QosSpec::with_period(4_000_000),
            library,
        }
    }

    fn light() -> ApplicationSpec {
        pipe_app("light", 24 * 1024)
    }

    fn heavy() -> ApplicationSpec {
        pipe_app("heavy", 48 * 1024)
    }

    /// Builds the fragmented state: one light app on each ARM, 40 KiB free
    /// on both tiles. Returns the manager and the two survivors' handles.
    fn fragmented_manager() -> (RuntimeManager<SpatialMapper>, AppHandle, AppHandle) {
        let mut m = RuntimeManager::new(defrag_platform(), SpatialMapper::default());
        let a = m.start(light()).unwrap();
        let b = m.start(light()).unwrap();
        let c = m.start(light()).unwrap();
        let d = m.start(light()).unwrap();
        m.stop(b).unwrap();
        m.stop(c).unwrap();
        (m, a, d)
    }

    #[test]
    fn remap_honours_constraints_and_keeps_the_ledger_consistent() {
        let platform = defrag_platform();
        let arm_a = platform.tile_by_name("ARM-a").unwrap();
        let arm_b = platform.tile_by_name("ARM-b").unwrap();
        let mut m = RuntimeManager::new(platform, SpatialMapper::default());
        let before = m.state().clone();
        let h = m.start(light()).unwrap();
        let spec = m.get(h).unwrap().spec.clone();
        let process = spec.graph.process_by_name("Stage").unwrap();
        assert_eq!(
            m.get(h)
                .unwrap()
                .outcome
                .mapping
                .assignment(process)
                .unwrap()
                .tile,
            arm_a,
            "first fit places the light app on ARM-a"
        );
        let old = m
            .remap(h, &MappingConstraints::none().exclude_tile(arm_a))
            .expect("ARM-b can host the process");
        assert_eq!(old.mapping.assignment(process).unwrap().tile, arm_a);
        assert_eq!(
            m.get(h)
                .unwrap()
                .outcome
                .mapping
                .assignment(process)
                .unwrap()
                .tile,
            arm_b
        );
        // The remapped app stops cleanly: the ledger drains to empty.
        m.stop(h).unwrap();
        assert_eq!(m.state(), &before);
    }

    #[test]
    fn failed_remap_restores_state_and_routes_exactly() {
        let platform = defrag_platform();
        let arm_a = platform.tile_by_name("ARM-a").unwrap();
        let arm_b = platform.tile_by_name("ARM-b").unwrap();
        let mut m = RuntimeManager::new(platform, SpatialMapper::default());
        let h = m.start(light()).unwrap();
        let ledger = m.state().clone();
        let record = m.get(h).unwrap().clone();
        // Excluding both ARMs leaves the process nowhere to go.
        let err = m
            .remap(
                h,
                &MappingConstraints::none()
                    .exclude_tile(arm_a)
                    .exclude_tile(arm_b),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            RuntimeError::Admission(AdmissionError::Rejected(_))
        ));
        assert_eq!(m.state(), &ledger, "rollback restores the exact ledger");
        assert_eq!(
            m.get(h).unwrap(),
            &record,
            "the app keeps its old mapping, routes and buffers"
        );
        // Still fully functional: the old reservations release cleanly.
        m.stop(h).unwrap();
        assert!(m.utilization().is_idle());
    }

    #[test]
    fn remap_unknown_handle_is_a_runtime_error() {
        let mut m = RuntimeManager::new(defrag_platform(), SpatialMapper::default());
        let h = m.start(light()).unwrap();
        m.stop(h).unwrap();
        let err = m.remap(h, &MappingConstraints::none()).unwrap_err();
        assert_eq!(err.kind(), RuntimeErrorKind::UnknownHandle);
    }

    #[test]
    fn fragmented_admission_fails_plain_but_recovers_by_migration() {
        let (mut m, a, d) = fragmented_manager();
        // The defining property of fragmentation: total free ARM memory
        // (2 × 40 KiB) exceeds the heavy app's 48 KiB, but no single tile
        // has room — the admission is lost to *placement*, not capacity.
        let platform = m.platform().clone();
        let free_mem: Vec<u64> = ["ARM-a", "ARM-b"]
            .iter()
            .map(|name| {
                let t = platform.tile_by_name(name).unwrap();
                platform.tile(t).memory_bytes - m.state().used_memory(t)
            })
            .collect();
        assert!(free_mem.iter().sum::<u64>() > 48 * 1024);
        assert!(free_mem.iter().all(|&f| f < 48 * 1024));
        // Plain admission is blocked: 40 KiB free per ARM < 48 KiB.
        assert!(matches!(m.start(heavy()), Err(AdmissionError::Rejected(_))));
        let before = m.state().clone();
        let reconfiguration = m
            .start_with_reconfiguration(heavy(), &ReconfigurationPolicy::default())
            .expect("migrating one light app frees a whole ARM");
        assert_eq!(reconfiguration.migrations.len(), 1);
        assert!(reconfiguration.plans_tried >= 1);
        assert!(reconfiguration.migration_energy_pj > 0);
        assert_eq!(m.n_running(), 3);
        // The migrated light app kept its handle; both light handles live.
        assert!(m.get(a).is_some());
        assert!(m.get(d).is_some());
        assert_ne!(m.state(), &before, "the heavy app holds resources now");
        // Everything still stops cleanly — the transactional bookkeeping
        // left no stray claims behind.
        m.stop_all().unwrap();
        assert!(m.utilization().is_idle());
    }

    #[test]
    fn reconfiguration_failure_restores_everything() {
        let (mut m, _, _) = fragmented_manager();
        // Two heavies need two whole ARMs; only one can be freed.
        let ok = m
            .start_with_reconfiguration(heavy(), &ReconfigurationPolicy::default())
            .expect("first heavy recovers by migration");
        let ledger = m.state().clone();
        let records: Vec<_> = m.running().map(|(h, app)| (h, app.clone())).collect();
        let failure = m
            .start_with_reconfiguration(heavy(), &ReconfigurationPolicy::default())
            .expect_err("no plan can free 48 KiB more");
        assert!(matches!(failure.error, AdmissionError::Rejected(_)));
        assert!(failure.plans_tried >= 1);
        assert_eq!(m.state(), &ledger, "failed search leaves the ledger intact");
        let after: Vec<_> = m.running().map(|(h, app)| (h, app.clone())).collect();
        assert_eq!(records, after, "no running app was disturbed");
        m.stop(ok.handle).unwrap();
        m.stop_all().unwrap();
        assert!(m.utilization().is_idle());
    }

    #[test]
    fn reconfiguration_fast_path_skips_migration_when_room_exists() {
        let mut m = RuntimeManager::new(defrag_platform(), SpatialMapper::default());
        let reconfiguration = m
            .start_with_reconfiguration(light(), &ReconfigurationPolicy::default())
            .unwrap();
        assert!(reconfiguration.migrations.is_empty());
        assert_eq!(reconfiguration.plans_tried, 0);
        assert_eq!(reconfiguration.migration_energy_pj, 0);
    }

    #[test]
    fn zero_migration_policy_degenerates_to_plain_admission() {
        let (mut m, _, _) = fragmented_manager();
        let policy = ReconfigurationPolicy {
            max_migrations: 0,
            ..ReconfigurationPolicy::default()
        };
        let failure = m.start_with_reconfiguration(heavy(), &policy).unwrap_err();
        assert_eq!(failure.plans_tried, 0);
        assert_eq!(failure.migrations_attempted, 0);
    }

    #[test]
    fn cheapest_plan_wins_and_its_objective_is_minimal() {
        let (mut m, _, _) = fragmented_manager();
        let reconfiguration = m
            .start_with_reconfiguration(heavy(), &ReconfigurationPolicy::default())
            .expect("migration recovers the admission");
        assert!(
            !reconfiguration.plan_objectives.is_empty(),
            "feasible plans were enumerated"
        );
        assert_eq!(
            reconfiguration.objective,
            *reconfiguration.plan_objectives.iter().min().unwrap(),
            "under AlwaysAdmit the committed plan is the cheapest enumerated"
        );
        assert!(reconfiguration
            .plan_objectives
            .iter()
            .all(|&o| reconfiguration.objective <= o));
        assert_eq!(reconfiguration.plans_refused, 0);
        // The objective decomposes exactly as documented.
        let policy = ReconfigurationPolicy::default();
        assert_eq!(
            reconfiguration.objective,
            policy.objective.score(
                reconfiguration.steady_state_energy_pj,
                reconfiguration.migration_energy_pj
            )
        );
        assert_eq!(
            reconfiguration.steady_state_energy_pj,
            m.running_energy_pj(),
            "steady-state term is the post-commit running energy"
        );
        m.stop_all().unwrap();
    }

    #[test]
    fn energy_budget_refuses_expensive_recoveries() {
        // A zero budget refuses every migrating plan: the admission fails
        // although feasible plans exist, and the refusal is visible.
        let (mut m, _, _) = fragmented_manager();
        let ledger = m.state().clone();
        let policy = ReconfigurationPolicy {
            admission: AdmissionPolicy::EnergyBudget { max_transfer_pj: 0 },
            ..ReconfigurationPolicy::default()
        };
        let failure = m.start_with_reconfiguration(heavy(), &policy).unwrap_err();
        assert!(
            failure.plans_refused > 0,
            "the blocking was a policy decision: {failure:?}"
        );
        assert_eq!(m.state(), &ledger, "refused plans leave the ledger intact");
        // A generous budget admits again, and the committed plan respects it.
        let generous = ReconfigurationPolicy {
            admission: AdmissionPolicy::EnergyBudget {
                max_transfer_pj: u64::MAX,
            },
            ..ReconfigurationPolicy::default()
        };
        let reconfiguration = m.start_with_reconfiguration(heavy(), &generous).unwrap();
        assert!(reconfiguration.migration_energy_pj > 0);
        m.stop_all().unwrap();
    }

    #[test]
    fn amortized_payback_bounds_transfer_by_admitted_energy() {
        let (mut m, _, _) = fragmented_manager();
        // Horizon 0: no transfer is ever amortized.
        let strict = ReconfigurationPolicy {
            admission: AdmissionPolicy::AmortizedPayback { horizon_periods: 0 },
            ..ReconfigurationPolicy::default()
        };
        let failure = m.start_with_reconfiguration(heavy(), &strict).unwrap_err();
        assert!(failure.plans_refused > 0);
        // A huge horizon admits; the bound holds for the committed plan.
        let lax = ReconfigurationPolicy {
            admission: AdmissionPolicy::AmortizedPayback {
                horizon_periods: u64::MAX,
            },
            ..ReconfigurationPolicy::default()
        };
        let reconfiguration = m.start_with_reconfiguration(heavy(), &lax).unwrap();
        let admitted_energy = m.get(reconfiguration.handle).unwrap().outcome.energy_pj;
        assert!(reconfiguration.migration_energy_pj <= u64::MAX.saturating_mul(admitted_energy));
        m.stop_all().unwrap();
    }

    #[test]
    fn lambda_zero_still_recovers() {
        // λ‰ = 0 ranks plans purely by steady-state energy; recovery
        // behaviour (which admissions succeed) is unchanged.
        let (mut m, _, _) = fragmented_manager();
        let policy = ReconfigurationPolicy {
            objective: ReconfigurationObjective::steady_state_only(),
            ..ReconfigurationPolicy::default()
        };
        let reconfiguration = m.start_with_reconfiguration(heavy(), &policy).unwrap();
        assert_eq!(reconfiguration.migrations.len(), 1);
        m.stop_all().unwrap();
    }

    #[test]
    fn admission_policy_bounds() {
        assert!(AdmissionPolicy::AlwaysAdmit.admits(u64::MAX, 0));
        let budget = AdmissionPolicy::EnergyBudget {
            max_transfer_pj: 100,
        };
        assert!(budget.admits(100, 0));
        assert!(!budget.admits(101, 0));
        let payback = AdmissionPolicy::AmortizedPayback { horizon_periods: 4 };
        assert!(payback.admits(40, 10));
        assert!(!payback.admits(41, 10));
        assert!(payback.admits(0, 0), "a free move always pays back");
    }

    #[test]
    fn objective_weighs_migration_by_lambda() {
        let objective = ReconfigurationObjective {
            lambda_permille: 500,
        };
        assert_eq!(objective.score(10, 4), 10 * 1000 + 500 * 4);
        assert_eq!(
            ReconfigurationObjective::steady_state_only().score(10, 999),
            10_000
        );
        assert_eq!(
            ReconfigurationObjective::default().score(u64::MAX, u64::MAX),
            u64::MAX,
            "saturates instead of wrapping"
        );
    }

    #[test]
    fn switch_swaps_the_spec_atomically_and_keeps_the_handle() {
        let mut m = RuntimeManager::new(defrag_platform(), SpatialMapper::default());
        let before = m.state().clone();
        let h = m.start(light()).unwrap();
        let old = m.switch(h, heavy()).expect("the heavy spec fits alone");
        assert_eq!(old.mapping.assignments().count(), 1);
        assert_eq!(m.n_running(), 1);
        assert_eq!(m.get(h).unwrap().spec.name, "heavy");
        // The swapped application still stops cleanly.
        m.stop(h).unwrap();
        assert_eq!(m.state(), &before);
    }

    #[test]
    fn blocked_switch_keeps_the_old_configuration_running() {
        // Full fill: two lights per ARM. Switching one light to the heavy
        // spec releases its own 24 KiB, leaving 40 KiB on its tile next to
        // the co-tenant — not the 48 KiB the heavy needs anywhere.
        let mut m = RuntimeManager::new(defrag_platform(), SpatialMapper::default());
        let a = m.start(light()).unwrap();
        for _ in 0..3 {
            m.start(light()).unwrap();
        }
        let ledger = m.state().clone();
        let record = m.get(a).unwrap().clone();
        let err = m.switch(a, heavy()).unwrap_err();
        assert!(matches!(
            err,
            RuntimeError::Admission(AdmissionError::Rejected(_))
        ));
        assert_eq!(m.state(), &ledger, "failed switch restores the ledger");
        assert_eq!(
            m.get(a).unwrap(),
            &record,
            "the old configuration keeps running untouched"
        );
        m.stop_all().unwrap();
        assert!(m.utilization().is_idle());
    }

    #[test]
    fn switch_unknown_handle_is_a_runtime_error() {
        let mut m = RuntimeManager::new(defrag_platform(), SpatialMapper::default());
        let h = m.start(light()).unwrap();
        m.stop(h).unwrap();
        let err = m.switch(h, heavy()).unwrap_err();
        assert_eq!(err.kind(), RuntimeErrorKind::UnknownHandle);
    }

    // --- Fault injection and evacuation ----------------------------------

    #[test]
    fn tile_failure_evacuates_the_victim_to_a_healthy_tile() {
        let platform = defrag_platform();
        let arm_a = platform.tile_by_name("ARM-a").unwrap();
        let arm_b = platform.tile_by_name("ARM-b").unwrap();
        let mut m = RuntimeManager::new(platform, SpatialMapper::default());
        let h = m.start(light()).unwrap();
        let process = m
            .get(h)
            .unwrap()
            .spec
            .graph
            .process_by_name("Stage")
            .unwrap();
        assert_eq!(
            m.get(h)
                .unwrap()
                .outcome
                .mapping
                .assignment(process)
                .unwrap()
                .tile,
            arm_a
        );

        let evacuation = m
            .evacuate(FailureEvent::Tile(arm_a), &EvacuationPolicy::default())
            .unwrap();
        assert_eq!(evacuation.victims, vec![h]);
        assert_eq!(evacuation.evacuated.len(), 1);
        assert!(evacuation.evicted.is_empty());
        assert_eq!(evacuation.evacuated[0].processes_moved, 1);
        assert_eq!(
            m.get(h)
                .unwrap()
                .outcome
                .mapping
                .assignment(process)
                .unwrap()
                .tile,
            arm_b,
            "the victim now runs on the healthy ARM"
        );
        let util = m.utilization();
        assert_eq!(util.failed_tiles, 1);
        assert!(util.degraded_permille > 0);

        // Repair restores admissibility; the evacuee stays where it is.
        assert!(m.repair(FailureEvent::Tile(arm_a)));
        assert!(!m.is_failed(FailureEvent::Tile(arm_a)));
        assert_eq!(
            m.get(h)
                .unwrap()
                .outcome
                .mapping
                .assignment(process)
                .unwrap()
                .tile,
            arm_b
        );
        m.stop_all().unwrap();
        assert!(m.utilization().is_idle(), "no claims leak across the cycle");
    }

    #[test]
    fn unplaceable_victim_is_evicted_not_blocked() {
        // Both ARMs hold two lights each; failing one ARM leaves no healthy
        // capacity for its two tenants — they are evicted, the others stay.
        let platform = defrag_platform();
        let arm_a = platform.tile_by_name("ARM-a").unwrap();
        let mut m = RuntimeManager::new(platform, SpatialMapper::default());
        let handles: Vec<_> = (0..4).map(|_| m.start(light()).unwrap()).collect();
        let before_running = m.n_running();
        assert_eq!(before_running, 4);

        let evacuation = m
            .evacuate(FailureEvent::Tile(arm_a), &EvacuationPolicy::default())
            .unwrap();
        assert_eq!(evacuation.victims.len(), 2, "two tenants on the failed ARM");
        assert!(evacuation.evacuated.is_empty(), "ARM-b is already full");
        assert_eq!(evacuation.evicted.len(), 2);
        assert_eq!(m.n_running(), 2, "evicted apps are terminal");
        for evicted in &evacuation.evicted {
            assert!(m.get(*evicted).is_none());
            assert!(handles.contains(evicted));
        }
        m.repair(FailureEvent::Tile(arm_a));
        m.stop_all().unwrap();
        assert!(m.utilization().is_idle(), "evictions released everything");
    }

    #[test]
    fn failed_evacuation_rolls_back_exactly_before_eviction() {
        // One light on each ARM plus co-tenants so nothing can move: the
        // victim's failed attempt must leave every *other* app untouched.
        let platform = defrag_platform();
        let arm_a = platform.tile_by_name("ARM-a").unwrap();
        let mut m = RuntimeManager::new(platform, SpatialMapper::default());
        for _ in 0..4 {
            m.start(light()).unwrap();
        }
        let survivors: Vec<_> = m
            .running()
            .filter(|(_, app)| {
                let p = app.spec.graph.process_by_name("Stage").unwrap();
                app.outcome.mapping.assignment(p).unwrap().tile != arm_a
            })
            .map(|(h, app)| (h, app.clone()))
            .collect();
        m.evacuate(FailureEvent::Tile(arm_a), &EvacuationPolicy::default())
            .unwrap();
        for (h, record) in survivors {
            assert_eq!(m.get(h).unwrap(), &record, "survivors are untouched");
        }
        m.repair(FailureEvent::Tile(arm_a));
        m.stop_all().unwrap();
        assert!(m.utilization().is_idle());
    }

    #[test]
    fn admission_policy_can_veto_relocations_into_eviction() {
        let platform = defrag_platform();
        let arm_a = platform.tile_by_name("ARM-a").unwrap();
        let mut m = RuntimeManager::new(platform, SpatialMapper::default());
        m.start(light()).unwrap();
        let policy = EvacuationPolicy {
            admission: AdmissionPolicy::EnergyBudget { max_transfer_pj: 0 },
            ..EvacuationPolicy::default()
        };
        let evacuation = m.evacuate(FailureEvent::Tile(arm_a), &policy).unwrap();
        assert!(
            evacuation.evacuated.is_empty(),
            "zero budget vetoes the move"
        );
        assert_eq!(evacuation.evicted.len(), 1);
        m.repair(FailureEvent::Tile(arm_a));
        assert!(m.utilization().is_idle());
    }

    #[test]
    fn link_failure_reroutes_without_moving_processes() {
        // hiperlan2 on the paper platform commits routed paths; failing a
        // link one of them uses must re-route the app with every process
        // pinned in place (processes_moved == 0) when possible, or at
        // least keep the ledger exact.
        let mut m = manager();
        let h = m.start(hiperlan2_receiver(Hiperlan2Mode::Qpsk34)).unwrap();
        let used_link = m
            .get(h)
            .unwrap()
            .outcome
            .mapping
            .routes()
            .find_map(|(_, binding)| match binding {
                RouteBinding::Path(path) => path.links.first().copied(),
                RouteBinding::SameTile => None,
            })
            .expect("the paper mapping routes at least one channel");
        let evacuation = m
            .evacuate(FailureEvent::Link(used_link), &EvacuationPolicy::default())
            .unwrap();
        assert_eq!(evacuation.victims, vec![h], "the app uses the failed link");
        if let Some(evacuee) = evacuation.evacuated.first() {
            // The new mapping avoids the failed link entirely.
            let avoids =
                m.get(h)
                    .unwrap()
                    .outcome
                    .mapping
                    .routes()
                    .all(|(_, binding)| match binding {
                        RouteBinding::Path(path) => !path.links.contains(&used_link),
                        RouteBinding::SameTile => true,
                    });
            assert!(avoids, "evacuated mapping must not touch the failed link");
            assert_eq!(
                evacuee.processes_moved, 0,
                "pin-healthy re-route moves no process"
            );
        } else {
            assert_eq!(evacuation.evicted, vec![h]);
        }
        m.repair(FailureEvent::Link(used_link));
        m.stop_all().unwrap();
        assert!(m.utilization().is_idle());
    }

    #[test]
    fn evacuating_an_untouched_platform_finds_no_victims() {
        let platform = defrag_platform();
        let sink = platform.tile_by_name("Sink").unwrap();
        let mut m = RuntimeManager::new(platform, SpatialMapper::default());
        let h = m.start(light()).unwrap();
        let record = m.get(h).unwrap().clone();
        let evacuation = m
            .evacuate(FailureEvent::Tile(sink), &EvacuationPolicy::default())
            .unwrap();
        assert!(evacuation.victims.is_empty());
        assert_eq!(m.get(h).unwrap(), &record);
        // While the Sink is failed, admissions cannot use it.
        assert!(m.is_failed(FailureEvent::Tile(sink)));
        m.repair(FailureEvent::Tile(sink));
        m.stop_all().unwrap();
    }

    #[test]
    fn next_combination_enumerates_lexicographically() {
        let mut indices = vec![0, 1];
        let mut seen = vec![indices.clone()];
        while next_combination(&mut indices, 4) {
            seen.push(indices.clone());
        }
        assert_eq!(
            seen,
            vec![
                vec![0, 1],
                vec![0, 2],
                vec![0, 3],
                vec![1, 2],
                vec![1, 3],
                vec![2, 3]
            ]
        );
    }
}
