//! The run-time resource manager: multi-application lifecycles over one
//! shared occupancy ledger.
//!
//! The paper's motivation (§1.3) is that "at run-time when starting an
//! application, the actual set of applications already running is known,
//! allowing for a spatial mapping based on actual, rather than worst case
//! information". [`RuntimeManager`] is that run-time component: it owns the
//! [`PlatformState`] ledger, admits applications by mapping them with a
//! pluggable [`MappingAlgorithm`] against the *actual* occupancy, commits
//! admitted mappings atomically, and releases them again on
//! [`stop`](RuntimeManager::stop).
//!
//! Running applications are identified by [`AppHandle`]s — stable, unique
//! tokens that stay valid however many other applications start or stop in
//! between (unlike positional indices, which shift).
//!
//! # Example
//!
//! ```
//! use rtsm_app::hiperlan2::{hiperlan2_receiver, Hiperlan2Mode};
//! use rtsm_core::mapper::SpatialMapper;
//! use rtsm_core::runtime::RuntimeManager;
//! use rtsm_platform::paper::paper_platform;
//!
//! let mut manager = RuntimeManager::new(paper_platform(), SpatialMapper::default());
//! let handle = manager
//!     .start(hiperlan2_receiver(Hiperlan2Mode::Qpsk34))
//!     .expect("the paper's case study is admitted");
//! assert_eq!(manager.n_running(), 1);
//! // A second receiver does not fit while the first holds both MONTIUMs…
//! assert!(manager.start(hiperlan2_receiver(Hiperlan2Mode::Qpsk34)).is_err());
//! // …until the first one stops.
//! manager.stop(handle).expect("running application stops");
//! assert!(manager.start(hiperlan2_receiver(Hiperlan2Mode::Qpsk34)).is_ok());
//! ```

use crate::algorithm::{MappingAlgorithm, MappingOutcome};
use crate::error::{MapError, MapErrorKind};
use rtsm_app::ApplicationSpec;
use rtsm_platform::{Platform, PlatformError, PlatformState};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A stable identifier of one running application within a
/// [`RuntimeManager`]. Handles are unique across the manager's lifetime
/// and never reused, so a stale handle fails cleanly instead of silently
/// addressing a different application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AppHandle(u64);

impl AppHandle {
    /// The raw handle value (for logs and serialized scenario records).
    pub fn id(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for AppHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "app#{}", self.0)
    }
}

/// Why a lifecycle operation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmissionError {
    /// The algorithm found no feasible mapping: the application is
    /// *rejected* under the current occupancy (the expected, recoverable
    /// outcome when the platform is full).
    Rejected(MapError),
    /// Mapping succeeded but committing its reservations failed. The
    /// ledger is left unchanged. This cannot happen when the ledger is
    /// only mutated through one manager; it guards external mutation.
    CommitFailed(PlatformError),
    /// Releasing a stopping application's reservations failed — the ledger
    /// no longer matches what was committed (external mutation). The
    /// partial release is rolled back; the ledger is unchanged.
    ReleaseFailed(PlatformError),
    /// The handle does not name a running application (already stopped,
    /// or from another manager).
    UnknownHandle(AppHandle),
}

/// The serializable discriminant of [`AdmissionError`]: which variant
/// occurred (and, for rejections, which [`MapErrorKind`]), without the
/// attempt-specific payload. Rejection-reason histograms in scenario and
/// simulation reports are keyed by this type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AdmissionErrorKind {
    /// See [`AdmissionError::Rejected`]; carries the mapping failure kind.
    Rejected(MapErrorKind),
    /// See [`AdmissionError::CommitFailed`].
    CommitFailed,
    /// See [`AdmissionError::ReleaseFailed`].
    ReleaseFailed,
    /// See [`AdmissionError::UnknownHandle`].
    UnknownHandle,
}

impl fmt::Display for AdmissionErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionErrorKind::Rejected(kind) => write!(f, "rejected/{kind}"),
            AdmissionErrorKind::CommitFailed => f.write_str("commit-failed"),
            AdmissionErrorKind::ReleaseFailed => f.write_str("release-failed"),
            AdmissionErrorKind::UnknownHandle => f.write_str("unknown-handle"),
        }
    }
}

impl AdmissionError {
    /// This error's [`AdmissionErrorKind`] discriminant.
    pub fn kind(&self) -> AdmissionErrorKind {
        match self {
            AdmissionError::Rejected(e) => AdmissionErrorKind::Rejected(e.kind()),
            AdmissionError::CommitFailed(_) => AdmissionErrorKind::CommitFailed,
            AdmissionError::ReleaseFailed(_) => AdmissionErrorKind::ReleaseFailed,
            AdmissionError::UnknownHandle(_) => AdmissionErrorKind::UnknownHandle,
        }
    }
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::Rejected(e) => write!(f, "application rejected: {e}"),
            AdmissionError::CommitFailed(e) => {
                write!(f, "admission commit failed (ledger unchanged): {e}")
            }
            AdmissionError::ReleaseFailed(e) => {
                write!(f, "stop failed to release reservations: {e}")
            }
            AdmissionError::UnknownHandle(h) => {
                write!(f, "no running application with handle {h}")
            }
        }
    }
}

impl std::error::Error for AdmissionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AdmissionError::Rejected(e) => Some(e),
            AdmissionError::CommitFailed(e) | AdmissionError::ReleaseFailed(e) => Some(e),
            AdmissionError::UnknownHandle(_) => None,
        }
    }
}

/// Error of [`RuntimeManager::stop_all`]: a release failed partway
/// through. The applications stopped before the failure were released
/// successfully — their records are carried here, since they are no
/// longer registered with the manager — while the failing application and
/// all later ones keep running.
#[derive(Debug, Clone)]
pub struct StopAllError {
    /// Records of the applications stopped before the failure.
    pub stopped: Vec<(AppHandle, RunningApp)>,
    /// Why the next release failed.
    pub error: AdmissionError,
}

impl fmt::Display for StopAllError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "stop_all failed after stopping {} application(s): {}",
            self.stopped.len(),
            self.error
        )
    }
}

impl std::error::Error for StopAllError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// One admitted application: its specification and the mapping it runs
/// under.
///
/// The specification is held behind an [`Arc`] so admission paths that
/// draw the same spec repeatedly (catalogs, simulators) share one copy
/// instead of deep-cloning the graph and implementation library per
/// arrival.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunningApp {
    /// The application specification.
    pub spec: Arc<ApplicationSpec>,
    /// The committed mapping outcome.
    pub outcome: MappingOutcome,
}

/// Aggregate occupancy figures, for dashboards and admission policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Utilization {
    /// Compute slots in use across all tiles.
    pub used_slots: u32,
    /// Total compute slots of the platform.
    pub total_slots: u32,
    /// Bytes of tile memory in use (implementations + buffers).
    pub used_memory_bytes: u64,
    /// Total tile memory of the platform.
    pub total_memory_bytes: u64,
    /// Link bandwidth in use, words/second summed over directed links.
    pub used_link_bandwidth: u64,
    /// Total link bandwidth of the platform.
    pub total_link_bandwidth: u64,
    /// Number of running applications.
    pub running_apps: usize,
}

impl Utilization {
    /// `true` when nothing is running and no resource is in use — the
    /// occupancy of a freshly initialised ledger. Simulation teardown and
    /// scenario replay use this to assert that commit/release are exact
    /// inverses over a whole run.
    pub fn is_idle(&self) -> bool {
        self.running_apps == 0
            && self.used_slots == 0
            && self.used_memory_bytes == 0
            && self.used_link_bandwidth == 0
    }
}

/// The stateful run-time manager (see the [module docs](self)).
///
/// Generic over the mapping algorithm; use a concrete algorithm type for
/// static dispatch or `Box<dyn MappingAlgorithm>` to choose at run time:
///
/// ```
/// use rtsm_core::algorithm::MappingAlgorithm;
/// use rtsm_core::mapper::SpatialMapper;
/// use rtsm_core::runtime::RuntimeManager;
/// use rtsm_platform::paper::paper_platform;
///
/// let algorithm: Box<dyn MappingAlgorithm> = Box::new(SpatialMapper::default());
/// let manager = RuntimeManager::new(paper_platform(), algorithm);
/// assert_eq!(manager.algorithm().name(), "hierarchical heuristic (paper)");
/// ```
#[derive(Debug, Clone)]
pub struct RuntimeManager<A: MappingAlgorithm> {
    platform: Platform,
    algorithm: A,
    state: PlatformState,
    running: BTreeMap<AppHandle, RunningApp>,
    next_handle: u64,
}

impl<A: MappingAlgorithm> RuntimeManager<A> {
    /// A manager over an empty `platform` using `algorithm` for admission.
    pub fn new(platform: Platform, algorithm: A) -> Self {
        let state = platform.initial_state();
        RuntimeManager {
            platform,
            algorithm,
            state,
            running: BTreeMap::new(),
            next_handle: 0,
        }
    }

    /// A manager starting from a pre-occupied ledger (e.g. resources held
    /// by components outside this manager's control).
    pub fn with_state(platform: Platform, algorithm: A, state: PlatformState) -> Self {
        RuntimeManager {
            platform,
            algorithm,
            state,
            running: BTreeMap::new(),
            next_handle: 0,
        }
    }

    /// The managed platform.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The admission algorithm.
    pub fn algorithm(&self) -> &A {
        &self.algorithm
    }

    /// The current occupancy ledger.
    pub fn state(&self) -> &PlatformState {
        &self.state
    }

    /// Attempts to start `spec`: maps it against the **actual** current
    /// occupancy and, if a feasible mapping exists, commits its
    /// reservations atomically and returns a handle for later
    /// [`stop`](RuntimeManager::stop).
    ///
    /// On any error the ledger is unchanged (rollback-on-failure).
    ///
    /// The stored record keeps what the lifecycle needs (mapping, routes,
    /// buffers, scores); the search trace and composed CSDF graph are
    /// dropped so a long-lived manager does not accumulate per-admission
    /// search logs. Map with the algorithm directly when those are wanted.
    ///
    /// # Errors
    ///
    /// * [`AdmissionError::Rejected`] — no feasible mapping right now;
    /// * [`AdmissionError::CommitFailed`] — the mapping could not be
    ///   committed (only possible if the ledger was mutated externally).
    pub fn start(
        &mut self,
        spec: impl Into<Arc<ApplicationSpec>>,
    ) -> Result<AppHandle, AdmissionError> {
        let spec: Arc<ApplicationSpec> = spec.into();
        let mut outcome = self
            .algorithm
            .map(&spec, &self.platform, &self.state)
            .map_err(AdmissionError::Rejected)?;
        // `MappingOutcome::commit` rolls the ledger back on failure.
        outcome
            .commit(&spec, &self.platform, &mut self.state)
            .map_err(AdmissionError::CommitFailed)?;
        outcome.trace = None;
        outcome.csdf = None;
        let handle = AppHandle(self.next_handle);
        self.next_handle += 1;
        self.running.insert(handle, RunningApp { spec, outcome });
        Ok(handle)
    }

    /// Stops the application behind `handle`, releasing every resource its
    /// admission committed, and returns its record.
    ///
    /// # Errors
    ///
    /// * [`AdmissionError::UnknownHandle`] — `handle` is not running;
    /// * [`AdmissionError::ReleaseFailed`] — the ledger no longer holds the
    ///   committed reservations (external mutation). The release is rolled
    ///   back and the application stays registered, so the ledger is
    ///   exactly as before the call.
    pub fn stop(&mut self, handle: AppHandle) -> Result<RunningApp, AdmissionError> {
        let app = self
            .running
            .get(&handle)
            .ok_or(AdmissionError::UnknownHandle(handle))?;
        app.outcome
            .release(&app.spec, &self.platform, &mut self.state)
            .map_err(AdmissionError::ReleaseFailed)?;
        Ok(self.running.remove(&handle).expect("handle checked above"))
    }

    /// Stops every running application in handle (admission) order,
    /// releasing all their resources, and returns the stopped records.
    /// After a successful call the ledger holds only what was committed
    /// outside this manager (for [`RuntimeManager::new`] managers: nothing,
    /// so [`Utilization::is_idle`] holds).
    ///
    /// # Errors
    ///
    /// [`StopAllError`] if a release fails (external ledger mutation).
    /// Applications stopped before the failure stay stopped and their
    /// records are carried in the error; the failing one and all later
    /// ones keep running.
    pub fn stop_all(&mut self) -> Result<Vec<(AppHandle, RunningApp)>, StopAllError> {
        let handles: Vec<AppHandle> = self.running.keys().copied().collect();
        let mut stopped = Vec::with_capacity(handles.len());
        for handle in handles {
            match self.stop(handle) {
                Ok(record) => stopped.push((handle, record)),
                Err(error) => return Err(StopAllError { stopped, error }),
            }
        }
        Ok(stopped)
    }

    /// The running applications in handle (admission) order.
    pub fn running(&self) -> impl Iterator<Item = (AppHandle, &RunningApp)> {
        self.running.iter().map(|(h, app)| (*h, app))
    }

    /// The record of one running application.
    pub fn get(&self, handle: AppHandle) -> Option<&RunningApp> {
        self.running.get(&handle)
    }

    /// Number of running applications.
    pub fn n_running(&self) -> usize {
        self.running.len()
    }

    /// Total energy per period of all running applications, in picojoules.
    pub fn running_energy_pj(&self) -> u64 {
        self.running.values().map(|app| app.outcome.energy_pj).sum()
    }

    /// Aggregate occupancy of the managed platform.
    pub fn utilization(&self) -> Utilization {
        let mut util = Utilization {
            used_slots: 0,
            total_slots: 0,
            used_memory_bytes: 0,
            total_memory_bytes: 0,
            used_link_bandwidth: 0,
            total_link_bandwidth: 0,
            running_apps: self.running.len(),
        };
        for (tile, spec) in self.platform.tiles() {
            util.used_slots += self.state.used_slots(tile);
            util.total_slots += spec.compute_slots;
            util.used_memory_bytes += self.state.used_memory(tile);
            util.total_memory_bytes += spec.memory_bytes;
        }
        for (link, spec) in self.platform.links() {
            util.total_link_bandwidth += spec.capacity;
            util.used_link_bandwidth +=
                spec.capacity - self.state.residual_link(&self.platform, link);
        }
        util
    }

    /// Consumes the manager, returning the final ledger and the records of
    /// the applications still running.
    pub fn into_parts(self) -> (PlatformState, Vec<(AppHandle, RunningApp)>) {
        (self.state, self.running.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::SpatialMapper;
    use rtsm_app::hiperlan2::{hiperlan2_receiver, Hiperlan2Mode};
    use rtsm_platform::paper::paper_platform;

    fn manager() -> RuntimeManager<SpatialMapper> {
        RuntimeManager::new(paper_platform(), SpatialMapper::default())
    }

    #[test]
    fn start_stop_restores_the_empty_ledger() {
        let mut m = manager();
        let before = m.state().clone();
        let h = m.start(hiperlan2_receiver(Hiperlan2Mode::Qpsk34)).unwrap();
        assert_ne!(m.state(), &before, "admission must claim resources");
        let record = m.stop(h).unwrap();
        assert_eq!(
            m.state(),
            &before,
            "stop must release exactly what start claimed"
        );
        assert_eq!(
            record.spec.name,
            hiperlan2_receiver(Hiperlan2Mode::Qpsk34).name
        );
        assert_eq!(m.n_running(), 0);
    }

    #[test]
    fn handles_stay_valid_when_other_apps_stop() {
        // Two light modes fit together on the paper platform? They do not
        // (two MONTIUMs), so use start/stop interleaving on one app plus
        // handle uniqueness checks.
        let mut m = manager();
        let h0 = m.start(hiperlan2_receiver(Hiperlan2Mode::Bpsk12)).unwrap();
        m.stop(h0).unwrap();
        let h1 = m.start(hiperlan2_receiver(Hiperlan2Mode::Qpsk34)).unwrap();
        assert_ne!(h0, h1, "handles are never reused");
        assert!(matches!(
            m.stop(h0),
            Err(AdmissionError::UnknownHandle(stale)) if stale == h0
        ));
        assert_eq!(m.n_running(), 1);
        m.stop(h1).unwrap();
    }

    #[test]
    fn rejection_leaves_the_ledger_untouched() {
        let mut m = manager();
        let _h = m.start(hiperlan2_receiver(Hiperlan2Mode::Qpsk34)).unwrap();
        let occupied = m.state().clone();
        let err = m
            .start(hiperlan2_receiver(Hiperlan2Mode::Qpsk34))
            .unwrap_err();
        assert!(matches!(err, AdmissionError::Rejected(_)));
        assert_eq!(m.state(), &occupied);
        assert_eq!(m.n_running(), 1);
    }

    #[test]
    fn utilization_tracks_admissions() {
        let mut m = manager();
        let idle = m.utilization();
        assert_eq!(idle.used_slots, 0);
        assert_eq!(idle.running_apps, 0);
        let h = m.start(hiperlan2_receiver(Hiperlan2Mode::Qpsk34)).unwrap();
        let busy = m.utilization();
        assert!(busy.used_slots >= 4, "four processes hold slots");
        assert!(busy.used_memory_bytes > 0);
        assert!(busy.used_link_bandwidth > 0);
        assert_eq!(busy.running_apps, 1);
        m.stop(h).unwrap();
        assert_eq!(m.utilization(), idle);
    }

    #[test]
    fn stop_all_drains_to_an_idle_ledger() {
        let mut m = manager();
        assert!(m.utilization().is_idle());
        let before = m.state().clone();
        m.start(hiperlan2_receiver(Hiperlan2Mode::Qpsk34)).unwrap();
        assert!(!m.utilization().is_idle());
        let stopped = m.stop_all().expect("releases never fail in-manager");
        assert_eq!(stopped.len(), 1);
        assert_eq!(m.n_running(), 0);
        assert_eq!(m.state(), &before);
        assert!(m.utilization().is_idle());
        // Idempotent on an empty manager.
        assert!(m.stop_all().unwrap().is_empty());
    }

    #[test]
    fn admission_errors_expose_their_kind() {
        let mut m = manager();
        let h = m.start(hiperlan2_receiver(Hiperlan2Mode::Qpsk34)).unwrap();
        let rejected = m
            .start(hiperlan2_receiver(Hiperlan2Mode::Qpsk34))
            .unwrap_err();
        assert!(matches!(rejected.kind(), AdmissionErrorKind::Rejected(_)));
        if let AdmissionError::Rejected(map_err) = &rejected {
            assert_eq!(
                rejected.kind(),
                AdmissionErrorKind::Rejected(map_err.kind())
            );
        }
        m.stop(h).unwrap();
        let stale = m.stop(h).unwrap_err();
        assert_eq!(stale.kind(), AdmissionErrorKind::UnknownHandle);
    }

    #[test]
    fn works_boxed_over_dyn_algorithm() {
        let algorithm: Box<dyn MappingAlgorithm> = Box::new(SpatialMapper::default());
        let mut m = RuntimeManager::new(paper_platform(), algorithm);
        let h = m.start(hiperlan2_receiver(Hiperlan2Mode::Qpsk34)).unwrap();
        assert_eq!(m.n_running(), 1);
        m.stop(h).unwrap();
    }
}
