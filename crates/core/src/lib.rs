//! The run-time spatial mapper — the primary contribution of the DATE 2008
//! paper *"Run-time Spatial Mapping of Streaming Applications to a
//! Heterogeneous Multi-Processor System-on-Chip (MPSOC)"*.
//!
//! The mapper assigns the processes of a streaming application (a KPN with
//! per-tile-type CSDF implementations) to the tiles of an MPSoC and its
//! channels to paths through the NoC, minimising energy under QoS
//! constraints. It is a *hierarchical search with iterative refinement*
//! (§3): four steps, each shrinking the next step's search space, with
//! feedback re-triggering earlier steps when a later one fails.
//!
//! 1. [`step1`] — assign **implementations** to processes by desirability
//!    (gap between cheapest and second-cheapest option), first-fit packing
//!    onto concrete tiles.
//! 2. [`step2`] — improve the **tile assignment** by local search (move /
//!    swap within a tile type) on the Manhattan-distance communication
//!    cost; this regenerates the paper's Table 2 row for row.
//! 3. [`step3`] — assign **channels to paths**: heaviest demand first,
//!    capacity-constrained shortest paths.
//! 4. [`step4`] — **check the QoS constraints** by composing the mapped
//!    application's CSDF graph (Figure 3: implementation actors plus one
//!    router actor per traversed router) and analysing throughput, buffer
//!    capacities and latency with `rtsm-dataflow`.
//!
//! [`mapper::SpatialMapper`] drives the steps and the feedback loop;
//! [`criteria`] defines the paper's *adequate / adherent / feasible*
//! hierarchy; [`report`] renders the paper's tables.
//!
//! Two workspace-level abstractions are built on top:
//!
//! * [`algorithm::MappingAlgorithm`] — the unified interface every spatial
//!   mapper (this crate's heuristic and the `rtsm_baselines` comparators)
//!   implements, producing one shared [`algorithm::MappingOutcome`] type;
//! * [`runtime::RuntimeManager`] — the stateful run-time component of
//!   §1.3: it owns the occupancy ledger and drives handle-based
//!   multi-application lifecycles (admit / commit / release) through any
//!   `MappingAlgorithm`.
//!
//! # Example
//!
//! ```
//! use rtsm_app::hiperlan2::{hiperlan2_receiver, Hiperlan2Mode};
//! use rtsm_core::mapper::{MapperConfig, SpatialMapper};
//! use rtsm_platform::paper::paper_platform;
//!
//! let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
//! let platform = paper_platform();
//! let state = platform.initial_state();
//! let result = SpatialMapper::new(MapperConfig::default())
//!     .map(&spec, &platform, &state)
//!     .expect("the paper's case study is mappable");
//! assert!(result.feasible);
//! assert_eq!(result.communication_hops, 7); // the paper's final cost
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod algorithm;
pub mod claims;
pub mod constraints;
pub mod cost;
pub mod criteria;
pub mod error;
pub mod feedback;
pub mod mapper;
pub mod mapping;
pub mod report;
pub mod runtime;
pub mod step1;
pub mod step2;
pub mod step3;
pub mod step4;
pub mod template;
pub mod trace;

pub use algorithm::{MappingAlgorithm, MappingOutcome};
pub use constraints::MappingConstraints;
pub use cost::CostModel;
pub use error::{MapError, MapErrorKind};
pub use feedback::Feedback;
pub use mapper::{MapperConfig, SpatialMapper};
pub use mapping::{Assignment, Mapping, RouteBinding};
pub use runtime::{
    AdmissionError, AdmissionErrorKind, AdmissionPolicy, AppHandle, EvacuatedApp, Evacuation,
    EvacuationPolicy, FailureEvent, Migration, Reconfiguration, ReconfigurationFailure,
    ReconfigurationObjective, ReconfigurationPolicy, RunningApp, RuntimeError, RuntimeErrorKind,
    RuntimeManager, StopAllError, Utilization,
};
pub use template::{
    spec_fingerprint, MappingShape, TemplateLibrary, TemplateStats, TemplatedMapper,
};
