//! Integration tests for the design-time template library: every
//! template-admitted mapping must pass the *exact* feasibility checks its
//! heuristic twin would have run — resource claims and route capacities
//! (via `MappingOutcome::commit`), and the full step-4 QoS analysis
//! (`check_constraints` re-run from scratch on the instantiated mapping) —
//! and degraded platforms must never serve a shape that touches failed
//! hardware.

use proptest::prelude::*;
use rtsm_app::hiperlan2::{hiperlan2_receiver, Hiperlan2Mode};
use rtsm_core::step4::{check_constraints, Step4Config};
use rtsm_core::{MapperConfig, MappingAlgorithm, SpatialMapper, TemplatedMapper};
use rtsm_platform::paper::paper_platform;

const MODES: [Hiperlan2Mode; 6] = [
    Hiperlan2Mode::Bpsk12,
    Hiperlan2Mode::Bpsk34,
    Hiperlan2Mode::Qpsk12,
    Hiperlan2Mode::Qpsk34,
    Hiperlan2Mode::Qam16R916,
    Hiperlan2Mode::Qam16R34,
];

fn templated_paper_mapper() -> TemplatedMapper<SpatialMapper> {
    TemplatedMapper::new(SpatialMapper::new(
        MapperConfig::default().without_capture(),
    ))
}

proptest! {
    // Each case replays a full admission/release history, so a modest
    // case count already covers hits against empty, partially claimed,
    // and freshly vacated platform states.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Ops < 6 admit that HIPERLAN/2 mode; ops ≥ 6 release the oldest
    /// running instance. Every admission the *template hit path* grants
    /// is re-verified the way the heuristic twin would have: the exact
    /// claims and route allocations must fit the live state, and a
    /// from-scratch step-4 analysis of the instantiated mapping must be
    /// feasible with the very period and buffer sizing the shape carried.
    #[test]
    fn template_hits_pass_the_heuristic_twins_feasibility_checks(
        ops in proptest::collection::vec(0usize..8, 1..14),
    ) {
        let platform = paper_platform();
        let tm = templated_paper_mapper();
        let mut state = platform.initial_state();
        let mut running = Vec::new();
        for &op in &ops {
            if op >= 6 {
                if !running.is_empty() {
                    running.remove(0);
                    // Claims are additive, so "release the oldest" is
                    // exactly "rebuild from the survivors".
                    state = platform.initial_state();
                    for (spec, outcome) in &running {
                        let outcome: &rtsm_core::MappingOutcome = outcome;
                        outcome
                            .commit(spec, &platform, &mut state)
                            .expect("surviving claims re-commit onto a fresh state");
                    }
                }
                continue;
            }
            let spec = hiperlan2_receiver(MODES[op]);
            let before = tm.stats();
            let Ok(outcome) = tm.map(&spec, &platform, &state) else {
                prop_assert!(
                    !running.is_empty(),
                    "an empty platform must admit every HIPERLAN/2 mode"
                );
                continue;
            };
            let hit = tm.stats().hits > before.hits;
            if hit {
                prop_assert!(outcome.feasible);
                prop_assert!(outcome.csdf.is_none(), "the hit path never composes a CSDF");
                // The heuristic twin's QoS machinery, re-run from scratch
                // on the instantiated mapping: same feasibility, same
                // achieved period, same buffer sizing.
                let twin = check_constraints(
                    &spec,
                    &platform,
                    &outcome.mapping,
                    &state,
                    &Step4Config::default(),
                );
                prop_assert!(twin.feasible, "a template hit must satisfy step 4 exactly");
                prop_assert_eq!(twin.achieved_period, outcome.achieved_period);
                let key = |b: &rtsm_core::step4::ChannelBuffer| (b.channel.index(), b.capacity_words);
                let mut expected: Vec<_> = twin.buffers.iter().map(key).collect();
                let mut got: Vec<_> = outcome.buffers.iter().map(key).collect();
                expected.sort_unstable();
                got.sort_unstable();
                prop_assert_eq!(got, expected);
            }
            // Claims and route capacities: the exact reservations must fit
            // the live state (hit or miss alike — a template must never
            // hand out a mapping the ledger rejects).
            outcome
                .commit(&spec, &platform, &mut state)
                .expect("an admitted mapping's claims must fit the state it was mapped against");
            running.push((spec, outcome));
        }
    }
}

#[test]
fn degraded_platforms_never_serve_shapes_on_failed_tiles() {
    let platform = paper_platform();
    let tm = templated_paper_mapper();
    let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
    let healthy = platform.initial_state();
    tm.map(&spec, &platform, &healthy)
        .expect("the paper case is mappable");
    assert!(
        tm.stats().shapes_cached > 0,
        "the first arrival seeds a shape"
    );

    // Fail each tile in turn: whatever the library serves on the degraded
    // state must avoid the failed tile, and pruning must invalidate every
    // shape that no longer instantiates.
    let mut total_invalidated = 0u64;
    for (tile, _) in platform.tiles() {
        let mut degraded = platform.initial_state();
        degraded.fail_tile(tile);
        if let Ok(outcome) = tm.map(&spec, &platform, &degraded) {
            for (_, assignment) in outcome.mapping.assignments() {
                assert_ne!(
                    assignment.tile, tile,
                    "a degraded admission placed a process on the failed tile"
                );
            }
        }
        total_invalidated += tm.prune_unfit(&spec, &platform, &degraded) as u64;
        // Healthy admissions afterwards re-seed whatever pruning removed.
        tm.map(&spec, &platform, &healthy)
            .expect("the healthy platform keeps admitting");
    }
    assert_eq!(
        tm.stats().invalidations,
        total_invalidated,
        "every pruned shape must be counted as an invalidation"
    );
}

#[test]
fn two_fresh_libraries_replay_identically() {
    // The determinism contract behind the CI template-smoke byte-diff:
    // the same admission sequence through two independent libraries
    // yields identical outcomes and identical statistics.
    let platform = paper_platform();
    let (a, b) = (templated_paper_mapper(), templated_paper_mapper());
    for mapper in [&a, &b] {
        let mut state = platform.initial_state();
        for mode in MODES {
            let spec = hiperlan2_receiver(mode);
            if let Ok(outcome) = mapper.map(&spec, &platform, &state) {
                outcome
                    .commit(&spec, &platform, &mut state)
                    .expect("admitted claims fit");
            }
        }
    }
    assert_eq!(a.stats(), b.stats());
}
