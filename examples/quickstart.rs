//! Quickstart: map the paper's HIPERLAN/2 receiver onto the paper's MPSoC
//! with the handle-based run-time manager and print the result.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use rtsm::app::hiperlan2::{hiperlan2_receiver, Hiperlan2Mode};
use rtsm::core::report::render_summary;
use rtsm::core::{RuntimeManager, SpatialMapper};
use rtsm::platform::paper::paper_platform;
use rtsm::platform::render::render_layout;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The application: Figure 1's KPN with Table 1's implementations.
    let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
    println!("application: {}\n", spec.name);

    // 2. The platform: Figure 2's 3×3 mesh (two ARMs, two MONTIUMs).
    let platform = paper_platform();
    println!("{}", render_layout(&platform));

    // 3. The run-time manager owns the occupancy ledger and admits
    //    applications with the paper's four-step mapper.
    let mut manager = RuntimeManager::new(platform, SpatialMapper::default());

    // 4. Start the application: map against the actual (empty) occupancy,
    //    commit the reservations atomically, get a handle.
    let handle = manager.start(spec.clone())?;
    let app = manager.get(handle).expect("the app we just started");
    println!(
        "{}",
        render_summary(&app.outcome, &app.spec, manager.platform())
    );

    // 5. A second receiver cannot be admitted while the first runs …
    assert!(manager.start(spec.clone()).is_err());
    println!("second receiver correctly rejected while the first runs.");

    // … but can be after the first stops.
    manager.stop(handle)?;
    assert!(manager.start(spec).is_ok());
    println!("after stopping, the receiver maps again.");
    Ok(())
}
