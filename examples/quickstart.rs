//! Quickstart: map the paper's HIPERLAN/2 receiver onto the paper's MPSoC
//! and print the result.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use rtsm::app::hiperlan2::{hiperlan2_receiver, Hiperlan2Mode};
use rtsm::core::mapper::{MapperConfig, SpatialMapper};
use rtsm::core::report::render_summary;
use rtsm::platform::paper::paper_platform;
use rtsm::platform::render::render_layout;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The application: Figure 1's KPN with Table 1's implementations.
    let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
    println!("application: {}\n", spec.name);

    // 2. The platform: Figure 2's 3×3 mesh (two ARMs, two MONTIUMs).
    let platform = paper_platform();
    println!("{}", render_layout(&platform));

    // 3. Run-time state: nothing running yet.
    let mut state = platform.initial_state();

    // 4. Map: steps 1–4 with iterative refinement.
    let mapper = SpatialMapper::new(MapperConfig::default());
    let result = mapper.map(&spec, &platform, &state)?;
    println!("{}", render_summary(&result, &spec, &platform));

    // 5. Start the application: commit its resource reservations.
    result.commit(&spec, &platform, &mut state)?;
    println!("application started; MONTIUM slots now taken.");

    // 6. A second receiver cannot be admitted while the first runs …
    assert!(mapper.map(&spec, &platform, &state).is_err());
    println!("second receiver correctly rejected while the first runs.");

    // … but can be after the first stops.
    result.release(&spec, &platform, &mut state)?;
    assert!(mapper.map(&spec, &platform, &state).is_ok());
    println!("after stopping, the receiver maps again.");
    Ok(())
}
