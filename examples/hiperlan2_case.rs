//! The paper's Section 4 walk-through, step by step: prints Figure 1,
//! Table 1, Figure 2, Table 2 (regenerated exactly), and Figure 3's CSDF
//! composition with the computed buffer capacities.
//!
//! ```sh
//! cargo run --example hiperlan2_case
//! ```

use rtsm::app::hiperlan2::{hiperlan2_receiver, Hiperlan2Mode};
use rtsm::core::cost::CostModel;
use rtsm::core::feedback::Constraints;
use rtsm::core::report::{render_table1, render_table2};
use rtsm::core::step1::assign_implementations;
use rtsm::core::step2::{improve_assignment, Step2Config};
use rtsm::core::step3::route_channels;
use rtsm::core::step4::{check_constraints, Step4Config};
use rtsm::platform::paper::paper_platform;
use rtsm::platform::render::render_layout;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
    let platform = paper_platform();

    println!("— §4.1 Application Level Specification (Figure 1) —");
    for (_, ch) in spec.graph.channels() {
        println!(
            "  {:?} --{}--> {:?}{}",
            ch.src,
            ch.tokens_per_period,
            ch.dst,
            if ch.is_control { " [control]" } else { "" }
        );
    }

    println!("\n— §4.2 Implementations (Table 1) —");
    print!("{}", render_table1(&spec));

    println!("\n— §4.3 Hardware (Figure 2) —");
    print!("{}", render_layout(&platform));

    println!("\n— §4.4 Mapping —");
    let constraints = Constraints::new();
    let base = platform.initial_state();

    // Step 1: implementation selection by desirability + first-fit packing.
    let step1 = assign_implementations(&spec, &platform, &base, &constraints)
        .expect("the paper case passes step 1");
    println!("step 1 decisions (desirability order):");
    for e in &step1.step_events() {
        println!(
            "  {:<22} -> {} (desirability {})",
            spec.graph.process(e.process).name,
            platform.tile(e.tile).name,
            if e.desirability == u64::MAX {
                "max (single option)".to_string()
            } else {
                format!("{}", e.desirability)
            }
        );
    }

    // Step 2: local search — regenerates Table 2.
    let mut mapping = step1.mapping;
    let mut working = step1.working;
    let trace = improve_assignment(
        &spec,
        &platform,
        &constraints,
        &mut mapping,
        &mut working,
        &CostModel::HopCount,
        &Step2Config::default(),
    );
    println!("\nstep 2 iterations (Table 2):");
    print!("{}", render_table2(&spec, &platform, &trace));

    // Step 3: incremental routing, heaviest channel first.
    route_channels(&spec, &platform, &mut mapping, &mut working).expect("the paper case routes");
    println!("\nstep 3 routes:");
    for (cid, route) in mapping.routes() {
        println!("  {cid:?}: {} hops", route.hops());
    }

    // Step 4: compose the CSDF graph (Figure 3) and check the constraints.
    let step4 = check_constraints(
        &spec,
        &platform,
        &mapping,
        &working,
        &Step4Config::default(),
    );
    println!("\nstep 4 (Figure 3):");
    println!(
        "  actors: {} (A/D + Sink + 4 implementations + {} routers)",
        step4.csdf.n_actors(),
        step4
            .csdf
            .actors()
            .filter(|(_, a)| a.name.starts_with("R("))
            .count()
    );
    for (i, b) in step4.buffers.iter().enumerate() {
        println!(
            "  B{} = {} words (at {})",
            i + 1,
            b.capacity_words,
            platform.tile(b.tile).name
        );
    }
    println!(
        "  feasible: {} (achieved period {} ps / {} iterations)",
        step4.feasible, step4.achieved_period.0, step4.achieved_period.1
    );
    Ok(())
}

/// Small extension trait so the example reads linearly.
trait Step1Ext {
    fn step_events(&self) -> Vec<rtsm::core::trace::Step1Event>;
}

impl Step1Ext for rtsm::core::step1::Step1Output {
    fn step_events(&self) -> Vec<rtsm::core::trace::Step1Event> {
        self.events.clone()
    }
}
