//! Admission-by-defragmentation, worked end to end.
//!
//! A strip of 2-slot/64 KiB ARM tiles carries light (24 KiB) applications
//! two-per-tile. Churn leaves one light on *each* tile: every tile has
//! ~40 KiB free — 80 KiB in total — yet a heavy (48 KiB) arrival is
//! rejected, because no single tile can hold it. The capacity exists; the
//! *placement* doesn't. `RuntimeManager::start_with_reconfiguration`
//! searches bounded migration plans inside one platform transaction:
//! migrating one light next to another frees a whole tile, the heavy app
//! is admitted, and everything commits atomically (or nothing does).
//!
//! ```sh
//! cargo run --example defragmentation
//! ```

use rtsm::core::{ReconfigurationPolicy, RuntimeManager, SpatialMapper};
use rtsm::workloads::{defrag_heavy, defrag_light, defrag_platform};

fn main() {
    let platform = defrag_platform(2);
    let mut manager = RuntimeManager::new(platform, SpatialMapper::default());

    // Fill: four lights pack two per ARM.
    let lights: Vec<_> = (0..4)
        .map(|_| manager.start(defrag_light()).expect("strip has room"))
        .collect();
    println!("filled: {} lights running", manager.n_running());

    // Churn: one co-tenant per tile departs, stranding ~40 KiB per ARM.
    manager.stop(lights[0]).unwrap();
    manager.stop(lights[2]).unwrap();
    let util = manager.utilization();
    println!(
        "after churn: {} running, {} of {} slots used, {} KiB memory free",
        manager.n_running(),
        util.used_slots,
        util.total_slots,
        (util.total_memory_bytes - util.used_memory_bytes) / 1024,
    );

    // A heavy arrival is blocked — on placement, not capacity.
    let rejected = manager.start(defrag_heavy());
    println!(
        "plain admission of the 48 KiB app: {}",
        if rejected.is_err() {
            "REJECTED (no tile has 48 KiB although 80 KiB are free)"
        } else {
            "admitted"
        }
    );
    assert!(rejected.is_err());

    // Reconfiguration migrates one light and recovers the admission.
    let reconfiguration = manager
        .start_with_reconfiguration(defrag_heavy(), &ReconfigurationPolicy::default())
        .expect("one migration frees a whole ARM");
    println!(
        "reconfiguration: admitted as {} after {} plan(s), migrating {} app(s) \
         ({} process(es), {} pJ modelled transfer energy)",
        reconfiguration.handle,
        reconfiguration.plans_tried,
        reconfiguration.migrations.len(),
        reconfiguration
            .migrations
            .iter()
            .map(|m| m.processes_moved)
            .sum::<usize>(),
        reconfiguration.migration_energy_pj,
    );
    for migration in &reconfiguration.migrations {
        println!(
            "  migrated {} (move cost {}, {} pJ)",
            migration.handle, migration.move_cost, migration.energy_pj
        );
    }

    // The whole exchange was transactional: teardown drains to an idle
    // ledger, so commit and release stayed exact inverses throughout.
    manager.stop_all().expect("teardown");
    assert!(manager.utilization().is_idle());
    println!("teardown: ledger idle — every claim was released");
}
