//! Sustained stochastic load on the paper platform: a seeded
//! discrete-event simulation drives the `RuntimeManager` through thousands
//! of arrivals, departures, and HIPERLAN/2 mode switches, then reports
//! long-horizon admission metrics.
//!
//! The same seed always produces the same `SimReport` — run it twice and
//! diff the JSON.
//!
//! ```sh
//! cargo run --example run_sim
//! ```

use rtsm::core::SpatialMapper;
use rtsm::platform::paper::paper_platform;
use rtsm::sim::{run_sim, ArrivalProcess, Catalog, HoldingTime, SimConfig};

fn main() {
    let config = SimConfig {
        seed: 2008,
        arrivals: 2000,
        // Poisson arrivals every ~500 ticks, exponential sessions of ~2000
        // ticks: an offered load well above what the 3×3 platform carries,
        // so admission control is constantly exercised.
        arrival_process: ArrivalProcess::Poisson { mean_gap: 500 },
        holding: HoldingTime::Exponential { mean: 2000 },
        mode_switch_probability: 0.15,
        sample_interval: 50_000,
        horizon: None,
        reconfiguration: None,
        track_fragmentation: false,
        faults: None,
    };

    let run = run_sim(
        &paper_platform(),
        SpatialMapper::default(),
        &Catalog::hiperlan2(),
        &config,
    )
    .expect("the simulation never breaks its own ledger");
    let report = &run.report;

    println!(
        "seed {} · {} arrivals over {} virtual ticks ({})",
        report.seed, report.arrivals, report.end_time, report.algorithm
    );
    println!(
        "admitted {} · blocked {} · blocking probability {:.1}%",
        report.admitted,
        report.blocked,
        report.blocking_probability() * 100.0
    );
    println!(
        "mode switches: {} attempted, {} admitted, {} blocked",
        report.mode_switch_attempts, report.mode_switch_admitted, report.mode_switch_blocked
    );
    println!("rejection reasons:");
    for (kind, count) in &report.rejection_histogram {
        println!("  {kind:<40} {count}");
    }
    println!("admissions per application:");
    for (name, count) in &report.admitted_by_app {
        println!("  {name:<40} {count}");
    }
    println!(
        "energy integral {:.3} mJ·tick · peak {} running · mean slot utilization {}‰",
        report.energy_pj_ticks as f64 / 1e9,
        report.peak_running,
        report.mean_slots_permille()
    );
    println!(
        "wall clock: {} admission attempts, mean {:.1} µs, p50 {:.1} µs, p99 {:.1} µs, \
         worst {:.1} µs (not part of the report: only virtual time is deterministic)",
        run.wall.count(),
        run.wall.mean_ns() as f64 / 1e3,
        run.wall.p50_ns() as f64 / 1e3,
        run.wall.p99_ns() as f64 / 1e3,
        run.wall.max_ns() as f64 / 1e3
    );
    assert!(report.ledger_idle_at_end);
    println!("ledger idle after draining: commit/release stayed exact inverses");
}
