//! Run-time mapping in action: applications arrive and depart on a shared
//! MPSoC, and each start request is mapped against the *actual* occupancy —
//! the paper's §1.3 motivation.
//!
//! ```sh
//! cargo run --example runtime_scenario
//! ```

use rtsm::app::hiperlan2::{hiperlan2_receiver, Hiperlan2Mode};
use rtsm::core::mapper::MapperConfig;
use rtsm::platform::TileKind;
use rtsm::workloads::apps::{jpeg_encoder, wlan_tx};
use rtsm::workloads::{mesh_platform, run_scenario, AppEvent};

fn main() {
    // A 4×4 MPSoC with four MONTIUMs, four ARMs and two DSPs.
    let platform = mesh_platform(
        2026,
        4,
        4,
        &[
            (TileKind::Montium, 4),
            (TileKind::Arm, 4),
            (TileKind::Dsp, 2),
        ],
    );

    let events = vec![
        AppEvent::Start(Box::new(wlan_tx())),
        AppEvent::Start(Box::new(jpeg_encoder())),
        AppEvent::Start(Box::new(hiperlan2_receiver(Hiperlan2Mode::Qpsk34))),
        // The JPEG encoder finishes; its tiles free up.
        AppEvent::Stop(1),
        // A second WLAN transmitter arrives.
        AppEvent::Start(Box::new(wlan_tx())),
    ];

    let outcome = run_scenario(&platform, events, MapperConfig::default());

    println!(
        "admitted {} applications, rejected {}",
        outcome.admitted, outcome.rejected
    );
    println!(
        "applications running at the end ({} total, {:.1} nJ/period):",
        outcome.running.len(),
        outcome.running_energy_pj as f64 / 1000.0
    );
    for (spec, result) in &outcome.running {
        println!(
            "  {:<36} energy {:>8.1} nJ/period, {} hops, mapped in attempt {}",
            spec.name,
            result.energy_pj as f64 / 1000.0,
            result.communication_hops,
            result.attempts
        );
        for (pid, a) in result.mapping.assignments() {
            println!(
                "      {:<24} on {}",
                spec.graph.process(pid).name,
                platform.tile(a.tile).name
            );
        }
    }
}
