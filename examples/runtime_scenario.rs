//! Run-time mapping in action: applications arrive and depart on a shared
//! MPSoC, and each start request is mapped against the *actual* occupancy —
//! the paper's §1.3 motivation.
//!
//! Shows both layers of the lifecycle API: the scripted
//! [`run_scenario`](rtsm::workloads::run_scenario) replay and the
//! interactive, handle-based [`RuntimeManager`](rtsm::core::RuntimeManager)
//! underneath it.
//!
//! ```sh
//! cargo run --example runtime_scenario
//! ```

use rtsm::app::hiperlan2::{hiperlan2_receiver, Hiperlan2Mode};
use rtsm::core::{RuntimeManager, SpatialMapper};
use rtsm::platform::TileKind;
use rtsm::workloads::apps::{jpeg_encoder, wlan_tx};
use rtsm::workloads::{mesh_platform, run_scenario, AppEvent};

fn main() {
    // A 4×4 MPSoC with four MONTIUMs, four ARMs and two DSPs.
    let platform = mesh_platform(
        2026,
        4,
        4,
        &[
            (TileKind::Montium, 4),
            (TileKind::Arm, 4),
            (TileKind::Dsp, 2),
        ],
    );

    // --- Scripted replay -------------------------------------------------
    // Stop events name applications by the ordinal of their Start event
    // (stable under churn), not by a shifting positional index.
    let events = vec![
        AppEvent::start(wlan_tx()),                                 // id 0
        AppEvent::start(jpeg_encoder()),                            // id 1
        AppEvent::start(hiperlan2_receiver(Hiperlan2Mode::Qpsk34)), // id 2
        // The JPEG encoder finishes; its tiles free up.
        AppEvent::stop(1),
        // A second WLAN transmitter arrives.
        AppEvent::start(wlan_tx()), // id 3
    ];

    let outcome = run_scenario(&platform, events, SpatialMapper::default())
        .expect("the replay never breaks its own ledger");

    println!(
        "admitted {} applications, rejected {}",
        outcome.admitted, outcome.rejected
    );
    println!(
        "applications running at the end ({} total, {:.1} nJ/period):",
        outcome.running.len(),
        outcome.running_energy_pj as f64 / 1000.0
    );
    for (spec, result) in &outcome.running {
        println!(
            "  {:<36} energy {:>8.1} nJ/period, {} hops, mapped in attempt {}",
            spec.name,
            result.energy_pj as f64 / 1000.0,
            result.communication_hops,
            result.attempts
        );
        for (pid, a) in result.mapping.assignments() {
            println!(
                "      {:<24} on {}",
                spec.graph.process(pid).name,
                platform.tile(a.tile).name
            );
        }
    }

    // --- The same lifecycle, driven interactively ------------------------
    // A roomier 5×5 mesh so the transmitter and the encoder run together.
    let big = mesh_platform(
        7,
        5,
        5,
        &[
            (TileKind::Montium, 6),
            (TileKind::Arm, 8),
            (TileKind::Dsp, 4),
        ],
    );
    let mut manager = RuntimeManager::new(big, SpatialMapper::default());
    let wlan = manager.start(wlan_tx()).expect("empty platform admits");
    let jpeg = manager.start(jpeg_encoder()).expect("still fits");
    println!(
        "\nmanager: {} running, utilization {}/{} slots",
        manager.n_running(),
        manager.utilization().used_slots,
        manager.utilization().total_slots
    );
    manager.stop(jpeg).expect("running app stops");
    // `wlan` stays valid no matter what stopped around it.
    let record = manager.stop(wlan).expect("handle survives churn");
    println!(
        "manager: stopped {} last, ledger now idle ({} running)",
        record.spec.name,
        manager.n_running()
    );
}
