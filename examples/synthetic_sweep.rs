//! Synthetic-workload comparison: the paper's heuristic against the
//! optimal, annealing, random, and greedy baselines — the quantitative
//! benchmark §5 calls for.
//!
//! ```sh
//! cargo run --release --example synthetic_sweep
//! ```

use rtsm::baselines::{
    AnnealingMapper, ExhaustiveMapper, GreedyMapper, MappingAlgorithm, RandomMapper, SpatialMapper,
};
use rtsm::platform::TileKind;
use rtsm::workloads::{mesh_platform, synthetic_app, GraphShape, SyntheticConfig};
use std::time::Instant;

fn main() {
    println!(
        "{:<22} {:<30} {:>12} {:>6} {:>10}",
        "workload", "algorithm", "energy [nJ]", "hops", "time [µs]"
    );
    println!("{}", "-".repeat(86));

    for seed in [1u64, 2, 3] {
        for (label, shape, n) in [
            ("chain-6", GraphShape::Chain, 6),
            ("forkjoin-7", GraphShape::ForkJoin { width: 3 }, 7),
        ] {
            let spec = synthetic_app(&SyntheticConfig {
                seed,
                n_processes: n,
                shape,
                ..SyntheticConfig::default()
            });
            let platform = mesh_platform(
                seed.wrapping_mul(31),
                4,
                4,
                &[(TileKind::Montium, 5), (TileKind::Arm, 5)],
            );
            let state = platform.initial_state();

            let algorithms: Vec<Box<dyn MappingAlgorithm>> = vec![
                Box::new(SpatialMapper::default()),
                Box::new(GreedyMapper),
                Box::new(RandomMapper::default()),
                Box::new(AnnealingMapper {
                    iterations: 2000,
                    ..AnnealingMapper::default()
                }),
                Box::new(ExhaustiveMapper {
                    max_nodes: 300_000,
                    ..ExhaustiveMapper::default()
                }),
            ];
            for algorithm in &algorithms {
                let t0 = Instant::now();
                let outcome = algorithm.map(&spec, &platform, &state);
                let dt = t0.elapsed().as_secs_f64() * 1e6;
                match outcome {
                    Ok(r) => println!(
                        "{:<22} {:<30} {:>12.1} {:>6} {:>10.0}",
                        format!("{label} s{seed}"),
                        algorithm.name(),
                        r.energy_pj as f64 / 1000.0,
                        r.communication_hops,
                        dt
                    ),
                    Err(_) => println!(
                        "{:<22} {:<30} {:>12} {:>6} {:>10.0}",
                        format!("{label} s{seed}"),
                        algorithm.name(),
                        "-",
                        "-",
                        dt
                    ),
                }
            }
        }
    }
}
