//! Flight-recorder tracing of one admission: install a bounded
//! [`FlightRecorder`](rtsm::obs::FlightRecorder) as the thread's probe,
//! admit the HIPERLAN/2 receiver through the run-time manager, and print
//! the recorded span tree — the admission span, the four mapper steps,
//! buffer sizing, and the transaction-commit counter, each with its
//! wall-clock duration.
//!
//! The recorder observes; it never steers. The admission outcome here is
//! byte-identical to an un-probed run (CI gates this on the simulator).
//!
//! ```sh
//! cargo run --example trace_admission
//! ```

use rtsm::app::hiperlan2::{hiperlan2_receiver, Hiperlan2Mode};
use rtsm::core::{RuntimeManager, SpatialMapper};
use rtsm::obs::{self, FlightRecorder};
use rtsm::platform::paper::paper_platform;
use std::rc::Rc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small ring is plenty for one admission (~a dozen events); the
    // recorder drops the oldest events first when it overflows and says
    // so in the dump header.
    let recorder = Rc::new(FlightRecorder::new(4096));

    let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
    let mut manager = RuntimeManager::new(paper_platform(), SpatialMapper::default());

    // Everything the hot path emits while the guard lives lands in the
    // ring; dropping the guard restores the previous (no-op) probe.
    {
        let _guard = obs::install(recorder.clone() as Rc<dyn obs::Probe>);
        let handle = manager.start(spec)?;
        manager.stop(handle)?;
    }

    println!(
        "recorded {} events ({} dropped) while admitting and stopping the receiver:\n",
        recorder.len(),
        recorder.dropped()
    );
    print!("{}", recorder.dump(recorder.len()));

    assert_eq!(
        recorder.balance_errors(),
        0,
        "every span the hot path begins must end"
    );
    println!("\nspan tree balanced: every begin has a matching end.");
    Ok(())
}
