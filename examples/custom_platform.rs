//! Building a custom application and platform from scratch with the public
//! API: a software-defined-radio style pipeline on a 4×2 MPSoC.
//!
//! ```sh
//! cargo run --example custom_platform
//! ```

use rtsm::app::{
    ApplicationSpec, Endpoint, Implementation, ImplementationLibrary, ProcessGraph, QosSpec,
};
use rtsm::core::mapper::{MapperConfig, SpatialMapper};
use rtsm::core::report::render_summary;
use rtsm::dataflow::PhaseVec;
use rtsm::platform::{Coord, NocParams, PlatformBuilder, TileKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Application: decimate → filter → demodulate, 100 µs frames -----
    let mut graph = ProcessGraph::new();
    let dec = graph.add_process_abbrev("Decimator", "Dec.");
    let fir = graph.add_process_abbrev("FIR filter", "FIR");
    let dem = graph.add_process_abbrev("Demodulator", "Dem.");
    graph.add_channel(Endpoint::StreamInput, Endpoint::Process(dec), 128)?;
    graph.add_channel(Endpoint::Process(dec), Endpoint::Process(fir), 32)?;
    graph.add_channel(Endpoint::Process(fir), Endpoint::Process(dem), 32)?;
    graph.add_channel(Endpoint::Process(dem), Endpoint::StreamOutput, 8)?;

    let mut library = ImplementationLibrary::new();
    // Decimator: stream-through on a DSP or block-wise on an ARM.
    library.register(
        dec,
        Implementation::simple(
            "Decimator @ DSP",
            TileKind::Dsp,
            PhaseVec::uniform(2, 128).concat(&PhaseVec::uniform(1, 32)),
            PhaseVec::uniform(1, 128).concat(&PhaseVec::uniform(0, 32)),
            PhaseVec::uniform(0, 128).concat(&PhaseVec::uniform(1, 32)),
            45_000,
            2048,
        ),
    );
    library.register(
        dec,
        Implementation::simple(
            "Decimator @ ARM",
            TileKind::Arm,
            PhaseVec::from_slice(&[120, 700, 40]),
            PhaseVec::from_slice(&[128, 0, 0]),
            PhaseVec::from_slice(&[0, 0, 32]),
            95_000,
            6144,
        ),
    );
    library.register(
        fir,
        Implementation::simple(
            "FIR @ DSP",
            TileKind::Dsp,
            PhaseVec::from_slice(&[32, 900, 32]),
            PhaseVec::from_slice(&[32, 0, 0]),
            PhaseVec::from_slice(&[0, 0, 32]),
            60_000,
            2048,
        ),
    );
    library.register(
        fir,
        Implementation::simple(
            "FIR @ ARM",
            TileKind::Arm,
            PhaseVec::from_slice(&[80, 2500, 80]),
            PhaseVec::from_slice(&[32, 0, 0]),
            PhaseVec::from_slice(&[0, 0, 32]),
            130_000,
            8192,
        ),
    );
    library.register(
        dem,
        Implementation::simple(
            "Demod @ ARM",
            TileKind::Arm,
            PhaseVec::from_slice(&[40, 1200, 20]),
            PhaseVec::from_slice(&[32, 0, 0]),
            PhaseVec::from_slice(&[0, 0, 8]),
            80_000,
            4096,
        ),
    );

    let spec = ApplicationSpec {
        name: "SDR front-end".into(),
        graph,
        qos: QosSpec::with_period(100_000_000).latency_bound(400_000_000),
        library,
    };
    spec.validate()?;

    // --- Platform: a 4×2 mesh with two DSPs and two ARMs ---------------
    let platform = PlatformBuilder::mesh(4, 2)
        .noc(NocParams {
            hop_latency_cycles: 4,
            clock_mhz: 200,
            link_capacity: 200_000_000,
        })
        .tile_defaults(200, 1, 64 * 1024, 200_000_000)
        .tile("DSP1", TileKind::Dsp, Coord { x: 1, y: 0 })
        .tile("DSP2", TileKind::Dsp, Coord { x: 2, y: 0 })
        .tile("ARM1", TileKind::Arm, Coord { x: 1, y: 1 })
        .tile("ARM2", TileKind::Arm, Coord { x: 2, y: 1 })
        .tile("ADC", TileKind::AdcSource, Coord { x: 0, y: 0 })
        .tile("OUT", TileKind::Sink, Coord { x: 3, y: 1 })
        .build()?;

    let result = SpatialMapper::new(MapperConfig::default()).map(
        &spec,
        &platform,
        &platform.initial_state(),
    )?;
    print!("{}", render_summary(&result, &spec, &platform));
    println!(
        "latency: {} µs (bound 400 µs)",
        result.latency_ps.map(|l| l / 1_000_000).unwrap_or(0)
    );
    Ok(())
}
