//! Fault-tolerance properties of the health layer and the evacuation
//! path: any seeded interleaving of admissions, failures, evacuations,
//! repairs, and departures leaves the shared ledger byte-identical to a
//! from-scratch replay of the surviving mappings; survivors never occupy
//! a quarantined resource; and with faults disabled the simulator's
//! seed-2008 reports are byte-identical to the golden fixtures for
//! every registered algorithm.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rtsm::core::{
    AppHandle, EvacuationPolicy, FailureEvent, MappingAlgorithm, RouteBinding, RunningApp,
    RuntimeManager, SpatialMapper,
};
use rtsm::platform::paper::paper_platform;
use rtsm::platform::{LinkId, Platform, PlatformState, TileId, TileKind};
use rtsm::sim::{run_sim, ArrivalProcess, Catalog, HoldingTime, SimConfig};
use rtsm::workloads::mesh_platform;

/// The mixed-DSP mesh `simulate --catalog mixed` uses (platform seed 42).
fn mixed_platform() -> Platform {
    mesh_platform(
        42,
        4,
        4,
        &[
            (TileKind::Montium, 4),
            (TileKind::Arm, 4),
            (TileKind::Dsp, 2),
        ],
    )
}

/// Rebuilds the ledger from scratch: every surviving mapping committed
/// onto a fresh state, then the currently-open failures quarantined. If
/// the incremental ledger is correct, this replay is byte-identical.
fn replay_from_scratch<'a>(
    platform: &Platform,
    running: impl Iterator<Item = (AppHandle, &'a RunningApp)>,
    failed: &[FailureEvent],
) -> PlatformState {
    let mut state = platform.initial_state();
    for (_, app) in running {
        app.outcome
            .commit(&app.spec, platform, &mut state)
            .expect("a surviving mapping must re-commit onto a fresh ledger");
    }
    for failure in failed {
        match *failure {
            FailureEvent::Tile(tile) => state.fail_tile(tile),
            FailureEvent::Link(link) => state.fail_link(link),
        };
    }
    state
}

/// Asserts no surviving application touches a quarantined resource:
/// process assignments, buffer tiles, and every link (and endpoint) of
/// every routed channel must be healthy.
fn check_survivors(manager: &RuntimeManager<impl MappingAlgorithm>) {
    let state = manager.state();
    for (handle, app) in manager.running() {
        for (_, assignment) in app.outcome.mapping.assignments() {
            assert!(
                !state.is_tile_failed(assignment.tile),
                "app {handle:?} assigned to a failed tile"
            );
        }
        for buffer in &app.outcome.buffers {
            assert!(
                !state.is_tile_failed(buffer.tile),
                "app {handle:?} buffers on a failed tile"
            );
        }
        for (_, route) in app.outcome.mapping.routes() {
            if let RouteBinding::Path(path) = route {
                assert!(
                    !state.is_tile_failed(path.from) && !state.is_tile_failed(path.to),
                    "app {handle:?} routes from/to a failed tile"
                );
                for link in &path.links {
                    assert!(
                        !state.is_link_failed(*link),
                        "app {handle:?} routes through a failed link"
                    );
                }
            }
        }
    }
}

proptest! {
    // Each case drives a full manager through ~40 operations including
    // evacuations; 8 cases keep dev-profile CI time reasonable.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For any seeded interleaving of start / stop / fail+evacuate /
    /// repair, the incrementally-maintained ledger stays byte-identical
    /// to a from-scratch replay of the surviving mappings, and after
    /// stopping everything and repairing every failure it drains back to
    /// the pristine initial state.
    #[test]
    fn ledger_matches_replay_under_fault_interleavings(seed in 0u64..500) {
        let platform = mixed_platform();
        let catalog = Catalog::mixed_dsp();
        let mut manager = RuntimeManager::new(platform.clone(), SpatialMapper::default());
        let mut rng = StdRng::seed_from_u64(seed);
        let tiles: Vec<TileId> = platform.tiles().map(|(id, _)| id).collect();
        let links: Vec<LinkId> = platform.links().map(|(id, _)| id).collect();
        let policy = EvacuationPolicy::default();
        let mut handles: Vec<AppHandle> = Vec::new();
        let mut failed: Vec<FailureEvent> = Vec::new();

        for _ in 0..40 {
            match rng.random_range(0usize..8) {
                // Weighted towards admissions so the platform fills up
                // and failures actually hit running applications.
                0..=3 => {
                    let entry = &catalog.entries()[rng.random_range(0usize..catalog.len())];
                    if let Ok(handle) = manager.start(entry.spec.clone()) {
                        handles.push(handle);
                    }
                }
                4 => {
                    if !handles.is_empty() {
                        let handle = handles.swap_remove(rng.random_range(0usize..handles.len()));
                        manager.stop(handle).expect("running handles stop cleanly");
                    }
                }
                5..=6 => {
                    let failure = if rng.random_bool(0.5) {
                        FailureEvent::Tile(tiles[rng.random_range(0usize..tiles.len())])
                    } else {
                        FailureEvent::Link(links[rng.random_range(0usize..links.len())])
                    };
                    if manager.is_failed(failure) {
                        continue;
                    }
                    let evacuation = manager
                        .evacuate(failure, &policy)
                        .expect("evacuation never corrupts the ledger");
                    handles.retain(|h| !evacuation.evicted.contains(h));
                    failed.push(failure);
                    check_survivors(&manager);
                }
                _ => {
                    if !failed.is_empty() {
                        let failure = failed.swap_remove(rng.random_range(0usize..failed.len()));
                        prop_assert!(manager.repair(failure));
                    }
                }
            }
            let replay = replay_from_scratch(&platform, manager.running(), &failed);
            prop_assert!(
                manager.state() == &replay,
                "ledger diverged from from-scratch replay (seed {seed})"
            );
            let real_json = serde_json::to_string(manager.state()).expect("serialize");
            let replay_json = serde_json::to_string(&replay).expect("serialize");
            prop_assert_eq!(real_json, replay_json, "ledger bytes diverged (seed {})", seed);
        }

        // Drain: stop the survivors, repair the open failures — the
        // ledger must be exactly the pristine initial state again.
        for handle in handles.drain(..) {
            manager.stop(handle).expect("running handles stop cleanly");
        }
        for failure in failed.drain(..) {
            prop_assert!(manager.repair(failure));
        }
        prop_assert!(
            manager.state() == &platform.initial_state(),
            "ledger must drain to pristine after stop-all + repair-all (seed {seed})"
        );
    }

    /// After any single failure and evacuation, no surviving mapping
    /// touches the quarantined resource — assignments, buffers, route
    /// endpoints, and every traversed link are all healthy.
    #[test]
    fn evacuated_mappings_avoid_failed_resources(seed in 0u64..500) {
        let platform = paper_platform();
        let catalog = Catalog::hiperlan2();
        let mut manager = RuntimeManager::new(platform.clone(), SpatialMapper::default());
        let mut rng = StdRng::seed_from_u64(seed);

        // Fill the platform until admission blocks, so the failure has
        // victims to hit.
        loop {
            let entry = &catalog.entries()[rng.random_range(0usize..catalog.len())];
            if manager.start(entry.spec.clone()).is_err() {
                break;
            }
        }
        prop_assert!(manager.n_running() > 0);

        let tiles: Vec<TileId> = platform.tiles().map(|(id, _)| id).collect();
        let links: Vec<LinkId> = platform.links().map(|(id, _)| id).collect();
        let failure = if rng.random_bool(0.5) {
            FailureEvent::Tile(tiles[rng.random_range(0usize..tiles.len())])
        } else {
            FailureEvent::Link(links[rng.random_range(0usize..links.len())])
        };
        let evacuation = manager
            .evacuate(failure, &EvacuationPolicy::default())
            .expect("evacuation never corrupts the ledger");
        prop_assert_eq!(
            evacuation.evacuated.len() + evacuation.evicted.len(),
            evacuation.victims.len(),
            "victims partition into evacuated and evicted"
        );
        check_survivors(&manager);

        // Utilization must report the quarantine.
        let utilization = manager.utilization();
        match failure {
            FailureEvent::Tile(_) => prop_assert_eq!(utilization.failed_tiles, 1),
            FailureEvent::Link(_) => prop_assert_eq!(utilization.failed_tiles, 0),
        }
        prop_assert!(manager.repair(failure));
        prop_assert_eq!(manager.utilization().failed_tiles, 0);
    }
}

/// With faults disabled, the simulator's seed-2008 reports are
/// byte-identical to the golden fixtures — for every registered
/// algorithm on both the paper platform and the mixed-DSP mesh. This is
/// the "faults off ⇒ nothing changed" gate.
#[test]
fn faults_off_seed2008_reports_match_pre_fault_fixtures() {
    // `simulate`'s defaults with `--arrivals 500` — exactly how the
    // fixtures under tests/golden/ were generated.
    let config = SimConfig {
        seed: 2008,
        arrivals: 500,
        arrival_process: ArrivalProcess::Poisson { mean_gap: 500 },
        holding: HoldingTime::Exponential { mean: 2000 },
        mode_switch_probability: 0.10,
        sample_interval: 10_000,
        horizon: None,
        reconfiguration: None,
        track_fragmentation: false,
        faults: None,
    };
    let algorithms: Vec<fn() -> Box<dyn MappingAlgorithm>> =
        rtsm::exp::ALGORITHMS.iter().map(|e| e.build).collect();
    let fixtures = [
        (
            paper_platform(),
            Catalog::hiperlan2(),
            include_str!("golden/seed2008_hiperlan2_prepr.jsonl"),
        ),
        (
            mixed_platform(),
            Catalog::mixed_dsp(),
            include_str!("golden/seed2008_mixed_prepr.jsonl"),
        ),
    ];
    for (platform, catalog, fixture) in fixtures {
        let expected: Vec<&str> = fixture.lines().collect();
        assert_eq!(expected.len(), algorithms.len());
        for (make, want) in algorithms.iter().zip(expected) {
            let report = run_sim(&platform, make(), &catalog, &config)
                .expect("the simulation never breaks its own ledger")
                .report;
            let got = serde_json::to_string(&report).expect("serialize");
            assert_eq!(
                got, want,
                "faults-off report for `{}` drifted from the pre-fault fixture",
                report.algorithm
            );
        }
    }
}
