//! Properties of the discrete-event simulator: seeded runs are exactly
//! reproducible, conservation laws hold between arrivals, admissions, and
//! departures, and the shared ledger always drains back to empty.

use proptest::prelude::*;
use rtsm::core::{MappingAlgorithm, SpatialMapper};
use rtsm::platform::paper::paper_platform;
use rtsm::platform::TileKind;
use rtsm::sim::{run_sim, ArrivalProcess, Catalog, HoldingTime, SimConfig, SimReport};
use rtsm::workloads::mesh_platform;

fn config(seed: u64, arrivals: u64) -> SimConfig {
    SimConfig {
        seed,
        arrivals,
        arrival_process: ArrivalProcess::Poisson { mean_gap: 400 },
        holding: HoldingTime::Exponential { mean: 1500 },
        mode_switch_probability: 0.2,
        sample_interval: 5000,
        horizon: None,
        reconfiguration: None,
        track_fragmentation: false,
        faults: None,
    }
}

fn report_for(seed: u64, arrivals: u64) -> SimReport {
    run_sim(
        &paper_platform(),
        SpatialMapper::default(),
        &Catalog::hiperlan2(),
        &config(seed, arrivals),
    )
    .expect("the simulation never breaks its own ledger")
    .report
}

proptest! {
    // 6 cases keep dev-profile CI time reasonable: each case runs two
    // full ~60-arrival simulations.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Same seed ⇒ identical report, down to the serialized bytes.
    #[test]
    fn seeded_simulation_is_deterministic(seed in 0u64..1000) {
        let a = report_for(seed, 60);
        let b = report_for(seed, 60);
        prop_assert!(a == b, "reports for seed {seed} differ structurally");
        let json_a = serde_json::to_string(&a).expect("serialize");
        let json_b = serde_json::to_string(&b).expect("serialize");
        prop_assert!(json_a == json_b, "serialized reports for seed {seed} differ");
    }

    /// Departures never exceed admissions, every arrival is accounted for,
    /// and after draining the ledger is exactly empty again.
    #[test]
    fn conservation_and_drain(seed in 0u64..1000) {
        let report = report_for(seed, 60);
        prop_assert_eq!(report.arrivals, 60);
        prop_assert_eq!(report.admitted + report.blocked, report.arrivals);
        prop_assert!(report.departures <= report.admitted);
        prop_assert_eq!(
            report.departures + report.mode_switch_blocked,
            report.admitted,
            "each admitted instance departs or leaves at a blocked switch (seed {})", seed
        );
        prop_assert_eq!(report.final_running, 0);
        prop_assert!(report.ledger_idle_at_end, "ledger must drain empty (seed {})", seed);
    }
}

/// The acceptance scenario in miniature: one seed, every algorithm in
/// the `rtsm::exp::ALGORITHMS` registry, identical bytes on re-run, and
/// a report with blocking probability, utilization-over-time, and energy
/// totals for each.
#[test]
fn all_registered_algorithms_run_deterministically() {
    for entry in &rtsm::exp::ALGORITHMS {
        let (label, make) = (entry.name, entry.build);
        let run = |algorithm: Box<dyn MappingAlgorithm>| {
            run_sim(
                &paper_platform(),
                algorithm,
                &Catalog::hiperlan2(),
                &config(2008, 40),
            )
            .expect("simulation never breaks its own ledger")
            .report
        };
        let first = run(make());
        let second = run(make());
        assert_eq!(
            serde_json::to_string(&first).unwrap(),
            serde_json::to_string(&second).unwrap(),
            "algorithm `{label}` must be deterministic under the same seed"
        );
        assert!(first.end_time > 0);
        assert!(!first.samples.is_empty(), "utilization-over-time recorded");
        assert!(first.ledger_idle_at_end);
    }
}

/// A mixed-DSP workload on a 4×4 mesh exercises real concurrency (several
/// applications resident at once) and per-application admission counts.
#[test]
fn mixed_workload_on_a_mesh_platform() {
    let platform = mesh_platform(
        7,
        4,
        4,
        &[
            (TileKind::Montium, 4),
            (TileKind::Arm, 4),
            (TileKind::Dsp, 2),
        ],
    );
    let report = run_sim(
        &platform,
        SpatialMapper::default(),
        &Catalog::mixed_dsp(),
        &SimConfig {
            arrivals: 120,
            ..config(11, 120)
        },
    )
    .unwrap()
    .report;
    assert!(report.peak_running >= 2, "a mesh carries concurrent apps");
    assert!(
        report.admitted_by_app.len() >= 2,
        "several catalog entries admitted"
    );
    assert!(report.ledger_idle_at_end);
}

/// The acceptance scenario for reconfiguration: at the same seed, the
/// mixed workload's blocking probability is *strictly lower* with
/// reconfiguration than without, the recovered-admission counters are
/// populated and deterministic, and the ledger still drains to idle.
#[test]
fn reconfiguration_strictly_lowers_mixed_workload_blocking() {
    use rtsm::core::ReconfigurationPolicy;
    let platform = mesh_platform(
        42,
        4,
        4,
        &[
            (TileKind::Montium, 4),
            (TileKind::Arm, 4),
            (TileKind::Dsp, 2),
        ],
    );
    let base = SimConfig {
        seed: 2008,
        arrivals: 300,
        ..SimConfig::default()
    };
    let plain = run_sim(
        &platform,
        SpatialMapper::default(),
        &Catalog::mixed_dsp(),
        &base,
    )
    .unwrap()
    .report;
    let with_reconfig = || {
        run_sim(
            &platform,
            SpatialMapper::default(),
            &Catalog::mixed_dsp(),
            &SimConfig {
                reconfiguration: Some(ReconfigurationPolicy::default()),
                track_fragmentation: true,
                ..base.clone()
            },
        )
        .unwrap()
        .report
    };
    let reconfigured = with_reconfig();
    assert!(plain.reconfiguration.is_none());
    let counters = reconfigured
        .reconfiguration
        .clone()
        .expect("counters present");
    assert!(
        counters.admissions_recovered > 0,
        "the mixed workload must recover admissions: {counters:?}"
    );
    assert!(
        reconfigured.blocking_permille < plain.blocking_permille,
        "blocking must be strictly lower with reconfiguration \
         ({} vs {})",
        reconfigured.blocking_permille,
        plain.blocking_permille
    );
    assert!(reconfigured.ledger_idle_at_end);
    // Deterministic down to the serialized bytes.
    assert_eq!(
        serde_json::to_string(&reconfigured).unwrap(),
        serde_json::to_string(&with_reconfig()).unwrap()
    );
}

/// A horizon cuts the run short; `stop_all` still drains the ledger and
/// the report records who was running at the cut.
#[test]
fn horizon_teardown_uses_stop_all() {
    let report = run_sim(
        &paper_platform(),
        SpatialMapper::default(),
        &Catalog::hiperlan2(),
        &SimConfig {
            horizon: Some(20_000),
            ..config(5, 10_000)
        },
    )
    .unwrap()
    .report;
    assert!(report.end_time <= 20_000);
    assert!(report.arrivals < 10_000);
    assert!(report.ledger_idle_at_end);
}
