//! Serde round-trips for the model types: application specifications,
//! platforms, mappings and results survive JSON persistence — the basis
//! for scenario files and tooling interchange.

use rtsm::app::hiperlan2::{hiperlan2_receiver, Hiperlan2Mode};
use rtsm::app::ApplicationSpec;
use rtsm::core::mapper::{MapperConfig, SpatialMapper};
use rtsm::core::{Mapping, MappingOutcome};
use rtsm::dataflow::{CsdfGraph, PhaseVec};
use rtsm::platform::paper::paper_platform;
use rtsm::platform::{Platform, PlatformState};
use rtsm::sim::{run_sim, Catalog, InstanceId, SimConfig, SimEvent, SimReport};
use rtsm::workloads::{run_scenario, AppEvent, ScenarioOutcome, ScenarioSummary};

#[test]
fn application_spec_roundtrips() {
    let spec = hiperlan2_receiver(Hiperlan2Mode::Qam64R34);
    let json = serde_json::to_string(&spec).expect("serialize");
    let back: ApplicationSpec = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(spec, back);
    assert_eq!(back.validate(), Ok(()));
}

#[test]
fn platform_roundtrips() {
    let platform = paper_platform();
    let json = serde_json::to_string(&platform).expect("serialize");
    let back: Platform = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(platform, back);
    // Derived structure intact: link lookups still work.
    let arm1 = back.tile_by_name("ARM1").unwrap();
    let m2 = back.tile_by_name("MONTIUM2").unwrap();
    assert_eq!(back.manhattan(arm1, m2), 1);
}

#[test]
fn platform_state_roundtrips_with_allocations() {
    let platform = paper_platform();
    let mut state = platform.initial_state();
    let (link, _) = platform.links().next().unwrap();
    state.allocate_link(&platform, link, 12345).unwrap();
    let json = serde_json::to_string(&state).expect("serialize");
    let back: PlatformState = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(state, back);
    assert_eq!(
        back.residual_link(&platform, link),
        platform.link(link).capacity - 12345
    );
}

#[test]
fn mapping_roundtrips_with_routes() {
    let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
    let platform = paper_platform();
    let result = SpatialMapper::new(MapperConfig::default())
        .map(&spec, &platform, &platform.initial_state())
        .unwrap();
    let json = serde_json::to_string(&result.mapping).expect("serialize");
    let back: Mapping = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(result.mapping, back);
    assert_eq!(back.communication_hops(&spec, &platform), 7);
}

#[test]
fn csdf_graph_roundtrips() {
    let mut g = CsdfGraph::new();
    let a = g.add_actor("a", PhaseVec::from_slice(&[1, 170, 1]), 5000);
    let b = g.add_actor("b", PhaseVec::single(4), 5000);
    g.add_channel_full(
        a,
        b,
        PhaseVec::from_slice(&[0, 0, 64]),
        PhaseVec::single(1),
        2,
        Some(8),
    )
    .unwrap();
    let json = serde_json::to_string(&g).expect("serialize");
    let back: CsdfGraph = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(g, back);
}

#[test]
fn mapper_config_roundtrips() {
    let config = MapperConfig::default();
    let json = serde_json::to_string(&config).expect("serialize");
    let back: MapperConfig = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(config, back);
}

#[test]
fn mapping_outcome_roundtrips() {
    // The unified outcome type persists whole: mapping, buffers, CSDF
    // graph, trace, and the scalar scores — the record a benchmark run
    // stores per admission.
    let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
    let platform = paper_platform();
    let outcome = SpatialMapper::new(MapperConfig::default())
        .map(&spec, &platform, &platform.initial_state())
        .unwrap();
    let json = serde_json::to_string(&outcome).expect("serialize");
    let back: MappingOutcome = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(outcome, back);
    // A deserialized outcome is still operational: it commits and releases.
    let mut state = platform.initial_state();
    let before = state.clone();
    back.commit(&spec, &platform, &mut state).expect("commit");
    assert_ne!(state, before);
    back.release(&spec, &platform, &mut state).expect("release");
    assert_eq!(state, before);
}

#[test]
fn scenario_outcome_and_summary_roundtrip() {
    let platform = paper_platform();
    let outcome = run_scenario(
        &platform,
        vec![
            AppEvent::start(hiperlan2_receiver(Hiperlan2Mode::Qpsk34)),
            AppEvent::start(hiperlan2_receiver(Hiperlan2Mode::Qpsk34)), // rejected
            AppEvent::stop(0),
            AppEvent::start(hiperlan2_receiver(Hiperlan2Mode::Bpsk12)),
        ],
        SpatialMapper::default(),
    )
    .unwrap();

    let json = serde_json::to_string(&outcome).expect("serialize outcome");
    let back: ScenarioOutcome = serde_json::from_str(&json).expect("deserialize outcome");
    assert_eq!(outcome, back);

    let summary = outcome.summary();
    let json = serde_json::to_string(&summary).expect("serialize summary");
    let back: ScenarioSummary = serde_json::from_str(&json).expect("deserialize summary");
    assert_eq!(summary, back);
    assert_eq!(back.admitted, 2);
    assert_eq!(back.rejected, 1);
    assert_eq!(back.still_running, 1);
}

#[test]
fn scenario_rejection_reasons_roundtrip() {
    let platform = paper_platform();
    let outcome = run_scenario(
        &platform,
        vec![
            AppEvent::start(hiperlan2_receiver(Hiperlan2Mode::Qpsk34)),
            AppEvent::start(hiperlan2_receiver(Hiperlan2Mode::Qpsk34)), // rejected
        ],
        SpatialMapper::default(),
    )
    .unwrap();
    assert_eq!(outcome.rejections.len(), 1);
    let json = serde_json::to_string(&outcome).expect("serialize");
    let back: ScenarioOutcome = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back.rejections, outcome.rejections);
    assert_eq!(back.rejection_histogram(), outcome.rejection_histogram());
}

#[test]
fn sim_event_roundtrips() {
    let events = [
        SimEvent::Arrival {
            instance: InstanceId(3),
            catalog_index: 5,
        },
        SimEvent::Departure {
            instance: InstanceId(3),
        },
        SimEvent::ModeSwitch {
            instance: InstanceId(9),
        },
        SimEvent::Reconfigure {
            instance: InstanceId(12),
            catalog_index: 1,
        },
    ];
    for event in events {
        let json = serde_json::to_string(&event).expect("serialize");
        let back: SimEvent = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(event, back);
    }
}

#[test]
fn sim_report_roundtrips() {
    let run = run_sim(
        &paper_platform(),
        SpatialMapper::default(),
        &Catalog::hiperlan2(),
        &SimConfig {
            seed: 17,
            arrivals: 40,
            ..SimConfig::default()
        },
    )
    .expect("simulation never breaks its own ledger");
    let json = serde_json::to_string(&run.report).expect("serialize");
    let back: SimReport = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(run.report, back);
    // The rejection histogram's enum keys survive the round trip.
    assert_eq!(back.rejection_histogram, run.report.rejection_histogram);
    assert!(!back.samples.is_empty());
    // Without a reconfiguration policy, the optional section is *absent*
    // from the JSON (not null) — the byte-compatibility contract with
    // pre-reconfiguration reports.
    assert!(run.report.reconfiguration.is_none());
    assert!(!json.contains("\"reconfiguration\""));
    assert!(!json.contains("frag_permille"));
}

#[test]
fn sim_report_with_reconfiguration_roundtrips() {
    use rtsm::core::ReconfigurationPolicy;
    use rtsm::workloads::defrag_platform;
    let run = run_sim(
        &defrag_platform(4),
        SpatialMapper::default(),
        &Catalog::defrag(),
        &SimConfig {
            seed: 2008,
            arrivals: 300,
            reconfiguration: Some(ReconfigurationPolicy::default()),
            track_fragmentation: true,
            ..SimConfig::default()
        },
    )
    .expect("simulation never breaks its own ledger");
    let reconfiguration = run
        .report
        .reconfiguration
        .clone()
        .expect("counters present");
    assert!(
        reconfiguration.admissions_recovered > 0,
        "the engineered defrag workload recovers admissions: {reconfiguration:?}"
    );
    assert!(reconfiguration.migrations_committed > 0);
    assert!(reconfiguration.migration_energy_pj > 0);
    assert!(
        run.report.samples.iter().any(|s| s.frag_permille.is_some()),
        "fragmentation tracked per sample"
    );
    let json = serde_json::to_string(&run.report).expect("serialize");
    assert!(json.contains("\"reconfiguration\""));
    let back: SimReport = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(run.report, back);
}
