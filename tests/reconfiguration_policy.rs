//! Properties of the energy-aware reconfiguration objective and the
//! Pareto admission policies:
//!
//! * the committed plan's objective is minimal over every feasible plan
//!   the search enumerated (cheapest-plan selection, not first-feasible);
//! * `EnergyBudget` and `AmortizedPayback` never commit a plan violating
//!   their bound, and a refused recovery leaves the ledger untouched;
//! * λ‰ = 0 with `AlwaysAdmit` reproduces PR 4's seed-2008 defrag
//!   recovered-admission counts (the pre-objective, first-feasible search
//!   recovered exactly the same admissions);
//! * at the default λ, cheapest-plan selection spends no more migration
//!   energy than the recorded first-feasible baseline at equal blocking;
//! * with a bounded policy, blocked arrivals trade admissions for energy
//!   (strictly less migration energy than `AlwaysAdmit` at the same seed);
//! * reconfiguration-aware runs route mode switches through the
//!   transactional switch: blocked switches no longer evict, so every
//!   admitted instance departs.

use proptest::prelude::*;
use rtsm::core::{
    AdmissionPolicy, MapperConfig, ReconfigurationObjective, ReconfigurationPolicy, RuntimeManager,
    SpatialMapper,
};
use rtsm::sim::{run_sim, Catalog, SimConfig, SimReport};
use rtsm::workloads::{defrag_heavy, defrag_light, defrag_platform};

/// A manager over an `n_arms`-tile defrag strip, filled with lights and
/// churned by `stop_mask`: bit `i` stops the `i`-th admitted light. The
/// surviving pattern decides whether a heavy arrival fits plainly, needs
/// a migration plan, or is truly stuck.
fn churned_manager(n_arms: u16, stop_mask: u32) -> RuntimeManager<SpatialMapper> {
    let mut manager = RuntimeManager::new(defrag_platform(n_arms), SpatialMapper::default());
    let mut lights = Vec::new();
    while let Ok(handle) = manager.start(defrag_light()) {
        lights.push(handle);
    }
    assert_eq!(lights.len(), 2 * usize::from(n_arms), "two lights per ARM");
    for (i, handle) in lights.into_iter().enumerate() {
        if stop_mask & (1 << i) != 0 {
            manager.stop(handle).expect("live handle stops");
        }
    }
    manager
}

fn policy(lambda_permille: u64, admission: AdmissionPolicy) -> ReconfigurationPolicy {
    ReconfigurationPolicy {
        objective: ReconfigurationObjective { lambda_permille },
        admission,
        ..ReconfigurationPolicy::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The committed plan is the cheapest feasible plan enumerated: its
    /// objective is ≤ every entry of `plan_objectives`, and under
    /// `AlwaysAdmit` it *is* the minimum.
    #[test]
    fn chosen_plan_objective_is_minimal(
        n_arms in 2u16..=5,
        stop_mask in 0u32..1024,
        lambda_permille in 0u64..=4000,
    ) {
        let mut manager = churned_manager(n_arms, stop_mask);
        let policy = policy(lambda_permille, AdmissionPolicy::AlwaysAdmit);
        if let Ok(reconfiguration) =
            manager.start_with_reconfiguration(defrag_heavy(), &policy)
        {
            for &objective in &reconfiguration.plan_objectives {
                prop_assert!(
                    reconfiguration.objective <= objective,
                    "committed objective {} exceeds an enumerated plan's {}",
                    reconfiguration.objective,
                    objective
                );
            }
            if !reconfiguration.plan_objectives.is_empty() {
                prop_assert_eq!(
                    reconfiguration.objective,
                    *reconfiguration.plan_objectives.iter().min().unwrap()
                );
                prop_assert_eq!(
                    reconfiguration.objective,
                    policy.objective.score(
                        reconfiguration.steady_state_energy_pj,
                        reconfiguration.migration_energy_pj
                    )
                );
            } else {
                // Plain admission succeeded: nothing migrated.
                prop_assert!(reconfiguration.migrations.is_empty());
                prop_assert_eq!(reconfiguration.migration_energy_pj, 0);
            }
            prop_assert_eq!(
                reconfiguration.steady_state_energy_pj,
                manager.running_energy_pj()
            );
        }
        manager.stop_all().expect("teardown");
        prop_assert!(manager.utilization().is_idle());
    }

    /// `EnergyBudget` never commits a plan over budget; a refusal leaves
    /// the ledger exactly as it was.
    #[test]
    fn energy_budget_is_a_hard_bound(
        n_arms in 2u16..=5,
        stop_mask in 0u32..1024,
        max_transfer_pj in 0u64..1_500_000,
    ) {
        let mut manager = churned_manager(n_arms, stop_mask);
        let ledger = manager.state().clone();
        let policy = policy(1000, AdmissionPolicy::EnergyBudget { max_transfer_pj });
        match manager.start_with_reconfiguration(defrag_heavy(), &policy) {
            Ok(reconfiguration) => prop_assert!(
                reconfiguration.migration_energy_pj <= max_transfer_pj
                    || reconfiguration.migrations.is_empty(),
                "committed {} pJ over the {} pJ budget",
                reconfiguration.migration_energy_pj,
                max_transfer_pj
            ),
            Err(failure) => {
                prop_assert_eq!(manager.state(), &ledger, "refusal must not touch the ledger");
                // Refused feasible plans are reported as such.
                let _ = failure.plans_refused;
            }
        }
        manager.stop_all().expect("teardown");
    }

    /// `AmortizedPayback` never commits a plan whose transfer energy
    /// exceeds `horizon × admitted application energy`.
    #[test]
    fn amortized_payback_is_a_hard_bound(
        n_arms in 2u16..=5,
        stop_mask in 0u32..1024,
        horizon_periods in 0u64..200,
    ) {
        let mut manager = churned_manager(n_arms, stop_mask);
        let policy = policy(1000, AdmissionPolicy::AmortizedPayback { horizon_periods });
        if let Ok(reconfiguration) =
            manager.start_with_reconfiguration(defrag_heavy(), &policy)
        {
            let admitted_energy = manager
                .get(reconfiguration.handle)
                .expect("just admitted")
                .outcome
                .energy_pj;
            prop_assert!(
                reconfiguration.migration_energy_pj
                    <= horizon_periods.saturating_mul(admitted_energy)
                    || reconfiguration.migrations.is_empty(),
                "transfer {} pJ cannot pay back within {} periods of {} pJ",
                reconfiguration.migration_energy_pj,
                horizon_periods,
                admitted_energy
            );
        }
        manager.stop_all().expect("teardown");
    }
}

/// The simulate-bin defrag configuration at seed 2008, 500 arrivals —
/// exactly the workload PR 4's counters were recorded on.
fn defrag_config(policy: ReconfigurationPolicy) -> SimConfig {
    SimConfig {
        seed: 2008,
        arrivals: 500,
        reconfiguration: Some(policy),
        track_fragmentation: true,
        ..SimConfig::default()
    }
}

fn defrag_report(policy: ReconfigurationPolicy) -> SimReport {
    run_sim(
        &defrag_platform(4),
        SpatialMapper::new(MapperConfig::default().without_capture()),
        &Catalog::defrag(),
        &defrag_config(policy),
    )
    .expect("the simulation never breaks its own ledger")
    .report
}

/// PR 4's first-feasible search on the defrag workload (seed 2008,
/// 500 arrivals, paper mapper, ≤2 migrations × 8 plans): 11 recovered
/// admissions, 11 committed migrations, 34 blocked arrivals (65‰), and
/// 7 495 680 pJ of migration energy.
const PR4_RECOVERED: u64 = 11;
const PR4_MIGRATIONS: u64 = 11;
const PR4_BLOCKED: u64 = 34;
const PR4_BLOCKING_PERMILLE: u64 = 65;
const PR4_MIGRATION_ENERGY_PJ: u64 = 7_495_680;

/// λ‰ = 0 with `AlwaysAdmit` ranks plans purely by steady-state energy —
/// the recovery *behaviour* (which admissions succeed) must reproduce the
/// first-feasible search's seed-2008 counts exactly.
#[test]
fn lambda_zero_always_admit_reproduces_pr4_recovery_counts() {
    let report = defrag_report(policy(0, AdmissionPolicy::AlwaysAdmit));
    let reconfiguration = report.reconfiguration.clone().expect("counters present");
    assert_eq!(reconfiguration.admissions_recovered, PR4_RECOVERED);
    assert_eq!(reconfiguration.migrations_committed, PR4_MIGRATIONS);
    assert_eq!(report.blocked, PR4_BLOCKED);
    assert_eq!(report.blocking_permille, PR4_BLOCKING_PERMILLE);
    assert_eq!(reconfiguration.plans_refused, 0);
    assert!(report.ledger_idle_at_end);
}

/// At the default λ, cheapest-plan selection spends no more migration
/// energy than the recorded first-feasible baseline, at equal blocking —
/// the acceptance criterion of folding migration cost into the objective.
#[test]
fn cheapest_plan_selection_never_spends_more_than_first_feasible() {
    let report = defrag_report(ReconfigurationPolicy::default());
    let reconfiguration = report.reconfiguration.clone().expect("counters present");
    assert_eq!(report.blocking_permille, PR4_BLOCKING_PERMILLE);
    assert_eq!(reconfiguration.admissions_recovered, PR4_RECOVERED);
    assert!(
        reconfiguration.migration_energy_pj <= PR4_MIGRATION_ENERGY_PJ,
        "cheapest-plan selection spent {} pJ, first-feasible spent {} pJ",
        reconfiguration.migration_energy_pj,
        PR4_MIGRATION_ENERGY_PJ
    );
}

/// The Pareto trade at one seed: a bounded admission policy still
/// recovers admissions while spending strictly less migration energy than
/// `AlwaysAdmit` (blocking may rise — that is the trade).
#[test]
fn energy_budget_trades_admissions_for_strictly_less_energy() {
    let always = defrag_report(policy(1000, AdmissionPolicy::AlwaysAdmit));
    let bounded = defrag_report(policy(
        1000,
        AdmissionPolicy::EnergyBudget {
            max_transfer_pj: 500_000,
        },
    ));
    let always_counters = always.reconfiguration.clone().expect("counters");
    let bounded_counters = bounded.reconfiguration.clone().expect("counters");
    assert!(bounded_counters.admissions_recovered > 0);
    assert!(
        bounded_counters.migration_energy_pj < always_counters.migration_energy_pj,
        "bounded {} pJ vs always-admit {} pJ",
        bounded_counters.migration_energy_pj,
        always_counters.migration_energy_pj
    );
    assert!(
        bounded_counters.plans_refused > 0,
        "the budget must actually bind on this workload"
    );
    assert!(always.blocking_permille <= bounded.blocking_permille);
    // The report is stamped with the policy it ran under.
    assert!(bounded_counters.policy.starts_with("energy-budget"));
    assert_eq!(bounded_counters.lambda_permille, 1000);
}

/// Reconfiguration-aware runs route mode switches through the
/// transactional switch: a blocked switch no longer evicts the instance,
/// so every admitted instance departs, and survived switches are counted.
#[test]
fn mode_switches_survive_under_reconfiguration() {
    let report = defrag_report(ReconfigurationPolicy::default());
    let reconfiguration = report.reconfiguration.clone().expect("counters present");
    assert_eq!(
        report.departures, report.admitted,
        "blocked switches keep their instance running, so every admitted \
         instance departs"
    );
    assert_eq!(
        reconfiguration.mode_switches_survived, report.mode_switch_blocked,
        "every blocked switch survives as its old configuration"
    );
    assert!(report.ledger_idle_at_end);
}
