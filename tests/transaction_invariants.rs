//! The transactional contract of [`PlatformTransaction`], checked against
//! a naive model: for *any* interleaving of claims, releases, link and
//! path (de)allocations — including operations that fail mid-build — a
//! committed transaction leaves the ledger byte-identical to applying the
//! successful operations directly, and an aborted (or dropped) one leaves
//! it byte-identical to the snapshot taken at `begin`.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rtsm::platform::{
    routing, Coord, NocParams, Platform, PlatformBuilder, PlatformState, PlatformTransaction,
    TileClaim, TileId, TileKind,
};

/// A deliberately tight platform so random operations fail often: 2-slot
/// tiles, 4 KiB memory, small NI and link budgets.
fn tight_platform() -> Platform {
    PlatformBuilder::mesh(2, 2)
        .noc(NocParams {
            hop_latency_cycles: 4,
            clock_mhz: 200,
            link_capacity: 5_000,
        })
        .tile_defaults(200, 2, 4096, 10_000)
        .tile("a", TileKind::Arm, Coord { x: 0, y: 0 })
        .tile("b", TileKind::Arm, Coord { x: 1, y: 0 })
        .tile("c", TileKind::Arm, Coord { x: 0, y: 1 })
        .tile("d", TileKind::Arm, Coord { x: 1, y: 1 })
        .build()
        .unwrap()
}

fn random_claim(rng: &mut StdRng) -> TileClaim {
    TileClaim {
        slots: rng.random_range(0u64..3) as u32,
        memory_bytes: rng.random_range(0u64..3000),
        cycles_per_second: rng.random_range(0u64..150_000_000),
        injection: rng.random_range(0u64..8_000),
        ejection: rng.random_range(0u64..8_000),
    }
}

/// Applies one random operation to both the transaction and the naive
/// model, asserting they agree on success/failure.
fn apply_random_op(
    platform: &Platform,
    rng: &mut StdRng,
    tx: &mut PlatformTransaction<'_>,
    naive: &mut PlatformState,
) {
    let tile = TileId::from_index(rng.random_range(0usize..platform.n_tiles()));
    match rng.random_range(0usize..6) {
        0 => {
            let claim = random_claim(rng);
            let a = tx.claim_tile(tile, &claim).is_ok();
            let b = naive.claim_tile(platform, tile, &claim).is_ok();
            prop_assert_eq!(a, b, "claim_tile outcome diverged");
        }
        1 => {
            let claim = random_claim(rng);
            let a = tx.release_tile(tile, &claim).is_ok();
            let b = naive.release_tile(tile, &claim).is_ok();
            prop_assert_eq!(a, b, "release_tile outcome diverged");
        }
        2 => {
            let links: Vec<_> = platform.links().map(|(id, _)| id).collect();
            let link = links[rng.random_range(0usize..links.len())];
            let demand = rng.random_range(0u64..4_000);
            let a = tx.allocate_link(link, demand).is_ok();
            let b = naive.allocate_link(platform, link, demand).is_ok();
            prop_assert_eq!(a, b, "allocate_link outcome diverged");
        }
        3 => {
            let links: Vec<_> = platform.links().map(|(id, _)| id).collect();
            let link = links[rng.random_range(0usize..links.len())];
            let demand = rng.random_range(0u64..4_000);
            let a = tx.release_link(link, demand).is_ok();
            let b = naive.release_link(link, demand).is_ok();
            prop_assert_eq!(a, b, "release_link outcome diverged");
        }
        4 => {
            // Allocate a whole routed path — the composite operation the
            // mapping commit path uses.
            let from = TileId::from_index(rng.random_range(0usize..platform.n_tiles()));
            let to = TileId::from_index(rng.random_range(0usize..platform.n_tiles()));
            let demand = rng.random_range(1u64..4_000);
            if let Ok(path) = routing::route(platform, tx.state(), from, to, demand) {
                let a = tx.allocate_path(&path).is_ok();
                let b = routing::allocate(platform, naive, &path).is_ok();
                prop_assert_eq!(a, b, "allocate_path outcome diverged");
            }
        }
        _ => {
            // Release a (probably unallocated) path: exercises the
            // mid-build failure path where some links release and a later
            // step fails — the transaction must stay consistent.
            let from = TileId::from_index(rng.random_range(0usize..platform.n_tiles()));
            let to = TileId::from_index(rng.random_range(0usize..platform.n_tiles()));
            let demand = rng.random_range(1u64..2_000);
            if let Ok(path) = routing::route(platform, &platform.initial_state(), from, to, demand)
            {
                let a = tx.release_path(&path).is_ok();
                // The naive model must mirror the partial-then-rollback
                // semantics, so replay it under its own transaction.
                let b = routing::release(platform, naive, &path).is_ok();
                prop_assert_eq!(a, b, "release_path outcome diverged");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Chunks of random operations run inside transactions that randomly
    /// commit or abort; after every chunk the transactional ledger is
    /// byte-identical to the naive snapshot-and-replay model.
    #[test]
    fn any_interleaving_matches_naive_replay(seed in 0u64..400) {
        let platform = tight_platform();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut real = platform.initial_state();

        for _chunk in 0..6 {
            let snapshot = real.clone();
            let mut naive = snapshot.clone();
            let n_ops = rng.random_range(0usize..8);
            let commit = rng.random_bool(0.5);
            let explicit_abort = rng.random_bool(0.5);
            {
                let mut tx = PlatformTransaction::begin(&platform, &mut real);
                for _ in 0..n_ops {
                    apply_random_op(&platform, &mut rng, &mut tx, &mut naive);
                    prop_assert!(
                        tx.state() == &naive,
                        "mid-transaction state diverged from naive replay (seed {seed})"
                    );
                }
                if commit {
                    tx.commit();
                } else if explicit_abort {
                    tx.abort();
                }
                // else: drop without commit — the implicit abort.
            }
            let expected = if commit { naive } else { snapshot };
            prop_assert!(
                real == expected,
                "post-transaction ledger diverged (seed {seed}, commit {commit})"
            );
            // Byte-identical, not merely structurally equal.
            let real_json = serde_json::to_string(&real).expect("serialize");
            let expected_json = serde_json::to_string(&expected).expect("serialize");
            prop_assert_eq!(real_json, expected_json);
        }
    }
}
