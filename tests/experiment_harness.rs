//! Properties of the sharded experiment harness: the sealed report and
//! the JSONL record stream are byte-identical across worker counts and
//! across re-runs of the same spec, records stream in trial-id order,
//! and zero-admission trials seal without panicking.

use proptest::prelude::*;
use rtsm::exp::{run_experiment, ExperimentSpec, PolicySpec, SpecTemplate};

fn spec(arrivals: u64, seeds: Vec<u64>, repeats: u64) -> ExperimentSpec {
    ExperimentSpec {
        schema: None,
        name: "harness-property".to_string(),
        template: SpecTemplate {
            arrivals,
            mean_hold: Some(1500),
            switch_prob_pct: Some(20),
            sample_interval: Some(5000),
            horizon: None,
            platform_seed: None,
        },
        algorithms: vec!["greedy".to_string(), "paper".to_string()],
        catalogs: vec!["hiperlan2".to_string()],
        mean_gaps: vec![500, 1500],
        policies: vec![PolicySpec::none()],
        seeds,
        repeats: Some(repeats),
    }
}

/// Runs `spec` at `workers` and returns (sealed report JSON, JSONL
/// stream, streamed trial ids).
fn run(spec: &ExperimentSpec, workers: usize) -> (String, String, Vec<u64>) {
    let mut jsonl = String::new();
    let mut ids = Vec::new();
    let run = run_experiment(spec, workers, |record, line| {
        jsonl.push_str(line);
        jsonl.push('\n');
        ids.push(record.id);
    })
    .expect("the property specs are valid");
    let sealed = serde_json::to_string(&run.report).expect("reports serialize");
    (sealed, jsonl, ids)
}

proptest! {
    // 3 cases keep dev-profile CI time reasonable: each case runs the
    // same 8-trial sweep twice (1 worker and 4 workers).
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The merge-determinism contract: `--workers 1` and `--workers 4`
    /// produce byte-identical sealed reports AND byte-identical JSONL
    /// streams, with records in trial-id order either way.
    #[test]
    fn worker_count_never_changes_a_byte(seed in 0u64..1000, arrivals in 30u64..60) {
        let spec = spec(arrivals, vec![seed, seed + 1], 1);
        let (sealed_one, jsonl_one, ids_one) = run(&spec, 1);
        let (sealed_four, jsonl_four, ids_four) = run(&spec, 4);
        prop_assert!(sealed_one == sealed_four, "sealed reports differ between 1 and 4 workers");
        prop_assert!(jsonl_one == jsonl_four, "JSONL streams differ between 1 and 4 workers");
        let expected: Vec<u64> = (0..spec.expand().len() as u64).collect();
        prop_assert_eq!(ids_one, expected.clone());
        prop_assert_eq!(ids_four, expected);
    }

    /// Re-running the same spec reproduces the same bytes — including
    /// the embedded FNV digest of the record stream.
    #[test]
    fn same_spec_reruns_are_byte_identical(seed in 0u64..1000) {
        let spec = spec(30, vec![seed], 2);
        let (sealed_a, jsonl_a, _) = run(&spec, 3);
        let (sealed_b, jsonl_b, _) = run(&spec, 3);
        prop_assert!(sealed_a == sealed_b, "re-run sealed reports differ for seed {}", seed);
        prop_assert!(jsonl_a == jsonl_b, "re-run JSONL streams differ for seed {}", seed);
    }
}

/// Repeats are distinct stochastic runs: with `repeats: 2`, the two
/// repeats of one seed run at different derived trial seeds and (in
/// general) produce different outcomes.
#[test]
fn repeats_run_at_distinct_derived_seeds() {
    let spec = spec(50, vec![2008], 2);
    let mut records = Vec::new();
    run_experiment(&spec, 2, |record, _| records.push(record.clone())).unwrap();
    let pairs: Vec<_> = records.chunks(2).collect();
    assert!(!pairs.is_empty());
    for pair in pairs {
        assert_eq!(pair[0].seed, pair[1].seed, "same base seed");
        assert_ne!(
            pair[0].trial_seed, pair[1].trial_seed,
            "repeats must derive distinct trial seeds"
        );
    }
}

/// A horizon that elapses before the first arrival: every trial seals
/// with zero admissions and explicit `null` energy-per-admitted fields —
/// no divide-by-zero, no empty-percentile panic — and the aggregate
/// report keeps such rows off the Pareto front.
#[test]
fn zero_arrival_trials_seal_a_valid_report() {
    let mut spec = spec(100, vec![1, 2], 1);
    spec.template.horizon = Some(1);
    let mut lines = String::new();
    let run = run_experiment(&spec, 2, |_, line| {
        lines.push_str(line);
        lines.push('\n');
    })
    .unwrap();
    assert_eq!(run.report.total_arrivals, 0);
    assert_eq!(run.report.total_admitted, 0);
    for record in &run.records {
        assert_eq!(record.admitted, 0);
        assert_eq!(record.energy_pj_ticks_per_admitted, None);
        assert!(record.ledger_idle_at_end);
    }
    for front in &run.report.pareto_fronts {
        assert!(
            front.points.is_empty(),
            "rows without admissions have no energy coordinate"
        );
    }
    // The explicit `null` is on the wire, not just in memory.
    assert!(lines.contains("\"energy_pj_ticks_per_admitted\":null"));
}
