//! Cross-crate property tests: the paper's criteria hierarchy and the
//! mapper's invariants over randomized workloads.

use proptest::prelude::*;
use rtsm::app::hiperlan2::{hiperlan2_receiver, Hiperlan2Mode};
use rtsm::core::criteria::{is_adequate, is_adherent};
use rtsm::core::mapper::{MapperConfig, SpatialMapper};
use rtsm::core::Mapping;
use rtsm::platform::paper::paper_platform;
use rtsm::platform::TileKind;
use rtsm::workloads::{mesh_platform, synthetic_app, GraphShape, SyntheticConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// feasible ⊆ adherent ⊆ adequate: whenever the mapper reports a
    /// feasible mapping, the lower criteria hold too.
    #[test]
    fn mapper_results_satisfy_criteria_chain(seed in 0u64..400) {
        let spec = synthetic_app(&SyntheticConfig {
            seed,
            n_processes: 5,
            ..SyntheticConfig::default()
        });
        let platform = mesh_platform(
            seed ^ 0xBEEF,
            4,
            4,
            &[(TileKind::Montium, 4), (TileKind::Arm, 4)],
        );
        let base = platform.initial_state();
        if let Ok(result) = SpatialMapper::new(MapperConfig::default()).map(&spec, &platform, &base) {
            prop_assert!(is_adequate(&result.mapping, &spec, &platform));
            prop_assert!(is_adherent(&result.mapping, &spec, &platform, &base));
            prop_assert!(result.feasible);
        }
    }

    /// Random raw mappings: adherent implies adequate (never the reverse
    /// dependency), and incomplete mappings are never adequate.
    #[test]
    fn adherence_implies_adequacy(
        impl_choices in proptest::collection::vec(0usize..2, 4),
        tile_choices in proptest::collection::vec(0usize..4, 4),
    ) {
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let platform = paper_platform();
        let tiles = [
            platform.tile_by_name("ARM1").unwrap(),
            platform.tile_by_name("ARM2").unwrap(),
            platform.tile_by_name("MONTIUM1").unwrap(),
            platform.tile_by_name("MONTIUM2").unwrap(),
        ];
        let mut mapping = Mapping::new();
        for (i, (pid, _)) in spec.graph.stream_processes().enumerate() {
            mapping.assign(pid, impl_choices[i], tiles[tile_choices[i]]);
        }
        let adequate = is_adequate(&mapping, &spec, &platform);
        let adherent = is_adherent(&mapping, &spec, &platform, &platform.initial_state());
        prop_assert!(!adherent || adequate, "adherent mapping must be adequate");
    }

    /// Commit followed by release restores the ledger exactly, for every
    /// feasible synthetic mapping.
    #[test]
    fn commit_release_is_identity(seed in 0u64..200) {
        let spec = synthetic_app(&SyntheticConfig {
            seed,
            n_processes: 4,
            shape: GraphShape::Chain,
            ..SyntheticConfig::default()
        });
        let platform = mesh_platform(
            seed ^ 0xC0FFEE,
            4,
            4,
            &[(TileKind::Montium, 3), (TileKind::Arm, 3)],
        );
        let mut state = platform.initial_state();
        let before = state.clone();
        if let Ok(result) = SpatialMapper::new(MapperConfig::default()).map(&spec, &platform, &state) {
            result.commit(&spec, &platform, &mut state).expect("commit after map");
            prop_assert!(state != before, "commit must change the ledger");
            result.release(&spec, &platform, &mut state).expect("release after commit");
            prop_assert!(state == before, "release must undo commit exactly");
        }
    }

    /// The mapper never assigns two processes to one single-slot tile and
    /// never exceeds a tile's cycle budget.
    #[test]
    fn no_tile_oversubscription(seed in 0u64..200) {
        let spec = synthetic_app(&SyntheticConfig {
            seed,
            n_processes: 6,
            ..SyntheticConfig::default()
        });
        let platform = mesh_platform(
            seed ^ 0xF00D,
            4,
            4,
            &[(TileKind::Montium, 4), (TileKind::Arm, 4)],
        );
        if let Ok(result) =
            SpatialMapper::new(MapperConfig::default()).map(&spec, &platform, &platform.initial_state())
        {
            let mut used = std::collections::HashMap::new();
            for (_, a) in result.mapping.assignments() {
                *used.entry(a.tile).or_insert(0u32) += 1;
            }
            for (tile, n) in used {
                prop_assert!(
                    n <= platform.tile(tile).compute_slots,
                    "tile {} hosts {n} processes",
                    platform.tile(tile).name
                );
            }
        }
    }
}

/// Energy accounting is consistent between the mapper's result and a
/// recomputation from the mapping (no hidden state).
#[test]
fn energy_recomputation_matches() {
    for seed in 0..10u64 {
        let spec = synthetic_app(&SyntheticConfig {
            seed,
            ..SyntheticConfig::default()
        });
        let platform = mesh_platform(seed, 4, 4, &[(TileKind::Montium, 4), (TileKind::Arm, 4)]);
        if let Ok(result) = SpatialMapper::new(MapperConfig::default()).map(
            &spec,
            &platform,
            &platform.initial_state(),
        ) {
            let recomputed =
                result
                    .mapping
                    .energy_pj(&spec, &platform, &rtsm::platform::EnergyModel::default());
            assert_eq!(result.energy_pj, recomputed, "seed {seed}");
        }
    }
}
