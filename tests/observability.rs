//! The cardinal observability invariant: probes observe, they never
//! steer. A simulation run with a recording probe installed must produce
//! a [`SimReport`] byte-identical to the un-probed run, for every
//! algorithm and any seed. Alongside it: the flight-recorder ring stays
//! bounded and balanced, the Chrome trace export is well-formed, and
//! latency histograms merge exactly.

use proptest::prelude::*;
use rtsm::core::{MappingAlgorithm, SpatialMapper};
use rtsm::obs::{self, FlightRecorder, LatencyHistogram, SpanLatencyProbe};
use rtsm::platform::paper::paper_platform;
use rtsm::sim::{run_sim, ArrivalProcess, Catalog, HoldingTime, SimConfig};
use std::rc::Rc;

fn config(seed: u64, arrivals: u64) -> SimConfig {
    SimConfig {
        seed,
        arrivals,
        arrival_process: ArrivalProcess::Poisson { mean_gap: 400 },
        holding: HoldingTime::Exponential { mean: 1500 },
        mode_switch_probability: 0.2,
        sample_interval: 5000,
        horizon: None,
        reconfiguration: None,
        track_fragmentation: false,
        faults: None,
    }
}

type MakeAlgorithm = fn() -> Box<dyn MappingAlgorithm>;

/// Every registered algorithm, straight from the registry the CLIs use.
fn all_algorithms() -> Vec<(&'static str, MakeAlgorithm)> {
    rtsm::exp::ALGORITHMS
        .iter()
        .map(|entry| (entry.name, entry.build))
        .collect()
}

/// Serialized report for one run; when `probe` is given it observes the
/// whole run through the thread-local slot.
fn report_json(make: MakeAlgorithm, seed: u64, probe: Option<Rc<dyn obs::Probe>>) -> String {
    let _guard = probe.map(obs::install);
    let run = run_sim(
        &paper_platform(),
        make(),
        &Catalog::hiperlan2(),
        &config(seed, 40),
    )
    .expect("simulation never breaks its own ledger");
    serde_json::to_string(&run.report).expect("reports serialize")
}

proptest! {
    // Each case runs two full 40-arrival simulations per registered
    // algorithm (probed and bare), so keep the case count small.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The cardinal invariant: a recording probe on the hot path leaves
    /// every deterministic report byte for byte unchanged, for every
    /// registered algorithm.
    #[test]
    fn recording_probe_never_changes_the_report(seed in 0u64..1000) {
        for (label, make) in all_algorithms() {
            let recorder = Rc::new(FlightRecorder::new(1 << 16));
            let probed = report_json(make, seed, Some(recorder.clone()));
            let bare = report_json(make, seed, None);
            prop_assert!(
                probed == bare,
                "algorithm `{label}` seed {seed}: report changed under observation"
            );
            prop_assert!(
                !recorder.is_empty(),
                "algorithm `{label}` seed {seed}: the probe saw no events"
            );
            prop_assert_eq!(
                recorder.balance_errors(),
                0,
                "algorithm `{}` seed {}: unbalanced span events",
                label,
                seed
            );
        }
    }

    /// The ring never exceeds its capacity; once full it reports drops
    /// instead of growing, and the Chrome export still emits only
    /// balanced begin/end pairs.
    #[test]
    fn flight_recorder_ring_stays_bounded(seed in 0u64..1000, capacity in 8usize..200) {
        let recorder = Rc::new(FlightRecorder::new(capacity));
        {
            let _guard = obs::install(recorder.clone() as Rc<dyn obs::Probe>);
            run_sim(
                &paper_platform(),
                SpatialMapper::default(),
                &Catalog::hiperlan2(),
                &config(seed, 30),
            )
            .expect("simulation never breaks its own ledger");
        }
        prop_assert!(recorder.len() <= recorder.capacity());
        prop_assert!(recorder.dropped() > 0, "30 arrivals overflow a {capacity}-slot ring");
        let trace = recorder.chrome_trace_json();
        let begins = trace.matches("\"ph\":\"B\"").count();
        let ends = trace.matches("\"ph\":\"E\"").count();
        prop_assert_eq!(begins, ends, "exported trace must pair every begin with an end");
    }

    /// Merging shards equals recording everything into one histogram —
    /// the property the experiment harness relies on when it folds
    /// per-trial histograms into the wall section.
    #[test]
    fn histogram_merge_is_exact(samples in collection::vec(1u64..1_000_000_000, 1..120),
                                split in 0usize..120) {
        let split = split.min(samples.len());
        let mut whole = LatencyHistogram::new();
        let (mut left, mut right) = (LatencyHistogram::new(), LatencyHistogram::new());
        for (i, &ns) in samples.iter().enumerate() {
            whole.record_ns(ns);
            if i < split { left.record_ns(ns) } else { right.record_ns(ns) }
        }
        left.merge(&right);
        prop_assert_eq!(
            serde_json::to_string(&whole).unwrap(),
            serde_json::to_string(&left).unwrap()
        );
        prop_assert_eq!(whole.count(), samples.len() as u64);
        prop_assert!(whole.p50_ns() <= whole.p90_ns());
        prop_assert!(whole.p90_ns() <= whole.p99_ns());
        prop_assert!(whole.p99_ns() <= whole.max_ns());
        prop_assert!(whole.min_ns() <= whole.mean_ns());
        prop_assert!(whole.mean_ns() <= whole.max_ns());
    }
}

/// The per-span latency probe sees every mapper step of every admission
/// attempt: the simulator's own wall histogram and the probe's `Map`
/// histogram count the same attempts.
#[test]
fn span_latency_probe_counts_every_admission_attempt() {
    let probe = Rc::new(SpanLatencyProbe::new());
    let run = {
        let _guard = obs::install(probe.clone() as Rc<dyn obs::Probe>);
        run_sim(
            &paper_platform(),
            SpatialMapper::default(),
            &Catalog::hiperlan2(),
            &config(2008, 60),
        )
        .expect("simulation never breaks its own ledger")
    };
    let map = probe.histogram(obs::Span::Map);
    assert!(
        map.count() >= run.wall.count(),
        "every timed admission maps"
    );
    for span in [obs::Span::Step1, obs::Span::BufferSizing] {
        assert!(
            probe.histogram(span).count() > 0,
            "span {} never fired",
            span.name()
        );
    }
}
