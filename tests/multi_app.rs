//! Multi-application run-time scenarios across the whole stack.

use rtsm::app::hiperlan2::{hiperlan2_receiver, Hiperlan2Mode};
use rtsm::core::mapper::MapperConfig;
use rtsm::platform::TileKind;
use rtsm::workloads::apps::{dvbt_rx, jpeg_encoder, mp3_decoder, wlan_tx};
use rtsm::workloads::{mesh_platform, run_scenario, AppEvent};

#[test]
fn mixed_workload_scenario_admits_and_releases() {
    let platform = mesh_platform(
        7,
        5,
        5,
        &[
            (TileKind::Montium, 6),
            (TileKind::Arm, 8),
            (TileKind::Dsp, 4),
        ],
    );
    let outcome = run_scenario(
        &platform,
        vec![
            AppEvent::Start(Box::new(wlan_tx())),
            AppEvent::Start(Box::new(jpeg_encoder())),
            AppEvent::Start(Box::new(mp3_decoder())),
            AppEvent::Stop(0),
            AppEvent::Start(Box::new(dvbt_rx())),
        ],
        MapperConfig::default(),
    );
    assert!(outcome.admitted >= 3, "admitted {}", outcome.admitted);
    // Whatever is still running is consistently accounted.
    let sum: u64 = outcome.running.iter().map(|(_, r)| r.energy_pj).sum();
    assert_eq!(sum, outcome.running_energy_pj);
}

#[test]
fn all_four_constructed_apps_map_alone() {
    let platform = mesh_platform(
        13,
        5,
        5,
        &[
            (TileKind::Montium, 6),
            (TileKind::Arm, 8),
            (TileKind::Dsp, 4),
        ],
    );
    for app in [wlan_tx(), dvbt_rx(), mp3_decoder(), jpeg_encoder()] {
        let outcome = run_scenario(
            &platform,
            vec![AppEvent::Start(Box::new(app.clone()))],
            MapperConfig::default(),
        );
        assert_eq!(outcome.admitted, 1, "{} failed to map", app.name);
    }
}

#[test]
fn saturating_the_platform_rejects_gracefully() {
    // A tiny platform: repeated starts must eventually reject without
    // panicking, and stops recover admission capacity.
    let platform = mesh_platform(
        3,
        3,
        3,
        &[(TileKind::Montium, 3), (TileKind::Arm, 2)],
    );
    let spec = || Box::new(hiperlan2_receiver(Hiperlan2Mode::Qpsk34));
    let outcome = run_scenario(
        &platform,
        vec![
            AppEvent::Start(spec()),
            AppEvent::Start(spec()),
            AppEvent::Start(spec()),
            AppEvent::Stop(0),
            AppEvent::Start(spec()),
        ],
        MapperConfig::default(),
    );
    // At most one receiver fits at a time (two MONTIUM processes needed,
    // three MONTIUMs present but ARMs limit the rest).
    assert!(outcome.admitted >= 1);
    assert!(outcome.rejected >= 1);
}

#[test]
fn scenario_energy_decreases_when_apps_stop() {
    let platform = mesh_platform(
        21,
        5,
        5,
        &[
            (TileKind::Montium, 6),
            (TileKind::Arm, 8),
            (TileKind::Dsp, 4),
        ],
    );
    let both = run_scenario(
        &platform,
        vec![
            AppEvent::Start(Box::new(wlan_tx())),
            AppEvent::Start(Box::new(jpeg_encoder())),
        ],
        MapperConfig::default(),
    );
    let after_stop = run_scenario(
        &platform,
        vec![
            AppEvent::Start(Box::new(wlan_tx())),
            AppEvent::Start(Box::new(jpeg_encoder())),
            AppEvent::Stop(1),
        ],
        MapperConfig::default(),
    );
    assert!(after_stop.running_energy_pj < both.running_energy_pj);
}
