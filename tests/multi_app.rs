//! Multi-application run-time scenarios across the whole stack.

use rtsm::app::hiperlan2::{hiperlan2_receiver, Hiperlan2Mode};
use rtsm::core::SpatialMapper;
use rtsm::platform::TileKind;
use rtsm::workloads::apps::{dvbt_rx, jpeg_encoder, mp3_decoder, wlan_tx};
use rtsm::workloads::{mesh_platform, run_scenario, AppEvent};

#[test]
fn mixed_workload_scenario_admits_and_releases() {
    let platform = mesh_platform(
        7,
        5,
        5,
        &[
            (TileKind::Montium, 6),
            (TileKind::Arm, 8),
            (TileKind::Dsp, 4),
        ],
    );
    let outcome = run_scenario(
        &platform,
        vec![
            AppEvent::start(wlan_tx()),
            AppEvent::start(jpeg_encoder()),
            AppEvent::start(mp3_decoder()),
            AppEvent::stop(0),
            AppEvent::start(dvbt_rx()),
        ],
        SpatialMapper::default(),
    )
    .expect("replay never breaks its own ledger");
    assert!(outcome.admitted >= 3, "admitted {}", outcome.admitted);
    // Whatever is still running is consistently accounted.
    let sum: u64 = outcome.running.iter().map(|(_, r)| r.energy_pj).sum();
    assert_eq!(sum, outcome.running_energy_pj);
}

#[test]
fn all_four_constructed_apps_map_alone() {
    let platform = mesh_platform(
        13,
        5,
        5,
        &[
            (TileKind::Montium, 6),
            (TileKind::Arm, 8),
            (TileKind::Dsp, 4),
        ],
    );
    for app in [wlan_tx(), dvbt_rx(), mp3_decoder(), jpeg_encoder()] {
        let outcome = run_scenario(
            &platform,
            vec![AppEvent::start(app.clone())],
            SpatialMapper::default(),
        )
        .expect("replay never breaks its own ledger");
        assert_eq!(outcome.admitted, 1, "{} failed to map", app.name);
    }
}

#[test]
fn saturating_the_platform_rejects_gracefully() {
    // A tiny platform: repeated starts must eventually reject without
    // panicking, and stops recover admission capacity.
    let platform = mesh_platform(3, 3, 3, &[(TileKind::Montium, 3), (TileKind::Arm, 2)]);
    let spec = || AppEvent::start(hiperlan2_receiver(Hiperlan2Mode::Qpsk34));
    let outcome = run_scenario(
        &platform,
        vec![spec(), spec(), spec(), AppEvent::stop(0), spec()],
        SpatialMapper::default(),
    )
    .expect("replay never breaks its own ledger");
    // At most one receiver fits at a time (two MONTIUM processes needed,
    // three MONTIUMs present but ARMs limit the rest).
    assert!(outcome.admitted >= 1);
    assert!(outcome.rejected >= 1);
}

#[test]
fn scenario_energy_decreases_when_apps_stop() {
    let platform = mesh_platform(
        21,
        5,
        5,
        &[
            (TileKind::Montium, 6),
            (TileKind::Arm, 8),
            (TileKind::Dsp, 4),
        ],
    );
    let both = run_scenario(
        &platform,
        vec![AppEvent::start(wlan_tx()), AppEvent::start(jpeg_encoder())],
        SpatialMapper::default(),
    )
    .expect("replay never breaks its own ledger");
    let after_stop = run_scenario(
        &platform,
        vec![
            AppEvent::start(wlan_tx()),
            AppEvent::start(jpeg_encoder()),
            AppEvent::stop(1),
        ],
        SpatialMapper::default(),
    )
    .expect("replay never breaks its own ledger");
    assert!(after_stop.running_energy_pj < both.running_energy_pj);
}
