//! End-to-end reproduction assertions for every paper artefact —
//! the workspace-level contract that `EXPERIMENTS.md` documents.

use rtsm::app::hiperlan2::{hiperlan2_receiver, Hiperlan2Mode};
use rtsm::core::mapper::{MapperConfig, SpatialMapper};
use rtsm::core::trace::Step2Move;
use rtsm::platform::paper::paper_platform;

/// E4 / Table 2: the exact published iteration sequence.
#[test]
fn table2_cost_sequence_is_11_11revert_9_7() {
    let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
    let platform = paper_platform();
    let result = SpatialMapper::new(MapperConfig::default())
        .map(&spec, &platform, &platform.initial_state())
        .expect("paper case maps");
    let trace = &result
        .trace
        .as_ref()
        .expect("the heuristic records a trace")
        .successful_attempt()
        .unwrap()
        .step2;

    assert_eq!(trace.initial_cost, 11, "initial greedy cost");
    // Shown rows: ARM swap (11, revert), MONTIUM swap (9, keep),
    // ARM swap (7, keep); afterwards only reverts ("No further choices").
    assert!(trace.events.len() >= 3);
    assert_eq!((trace.events[0].cost, trace.events[0].kept), (11, false));
    assert_eq!((trace.events[1].cost, trace.events[1].kept), (9, true));
    assert_eq!((trace.events[2].cost, trace.events[2].kept), (7, true));
    assert!(trace.events[3..].iter().all(|e| !e.kept));
    assert_eq!(trace.final_cost, 7);

    // Iteration kinds: swaps within tile types, as the paper notes
    // ("Swaps can, of course, only occur between tiles of the same type").
    for event in &trace.events {
        assert!(matches!(event.candidate, Step2Move::Swap { .. }));
    }
}

/// §4.4: the final placement of Table 2's last row.
#[test]
fn final_placement_matches_paper() {
    let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
    let platform = paper_platform();
    let result = SpatialMapper::new(MapperConfig::default())
        .map(&spec, &platform, &platform.initial_state())
        .unwrap();
    let tile_of = |name: &str| {
        let p = spec.graph.process_by_name(name).unwrap();
        platform
            .tile(result.mapping.assignment(p).unwrap().tile)
            .name
            .clone()
    };
    assert_eq!(tile_of("Prefix removal"), "ARM2");
    assert_eq!(tile_of("Freq. off. correction"), "ARM1");
    assert_eq!(tile_of("Inverse OFDM"), "MONTIUM2");
    assert_eq!(tile_of("Remainder"), "MONTIUM1");
    // And every process runs its preferred implementation type per Table 1:
    // Montium where it had to be, ARM elsewhere.
    assert_eq!(result.communication_hops, 7);
}

/// E5 / Figure 3: 12 router actors, 18 actors total, 4 computed buffers,
/// and the achieved period equals the required 4 µs exactly.
#[test]
fn figure3_composition_matches_paper() {
    let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
    let platform = paper_platform();
    let result = SpatialMapper::new(MapperConfig::default())
        .map(&spec, &platform, &platform.initial_state())
        .unwrap();
    let csdf = result
        .csdf
        .as_ref()
        .expect("the heuristic retains the CSDF graph");
    let routers = csdf
        .actors()
        .filter(|(_, a)| a.name.starts_with("R("))
        .count();
    assert_eq!(routers, 12);
    assert_eq!(csdf.n_actors(), 18);
    assert_eq!(result.buffers.len(), 4);
    assert_eq!(
        result.achieved_period.0,
        4_000_000 * result.achieved_period.1
    );
    // The composed CSDF graph is internally consistent (repetition vector
    // exists) — the property the paper's verification step relies on.
    assert!(csdf.validate().is_ok());
}

/// E11: every one of the seven modes maps feasibly on the paper platform.
#[test]
fn all_seven_modes_feasible() {
    let platform = paper_platform();
    let mapper = SpatialMapper::new(MapperConfig::default());
    for mode in Hiperlan2Mode::ALL {
        let spec = hiperlan2_receiver(mode);
        let result = mapper
            .map(&spec, &platform, &platform.initial_state())
            .unwrap_or_else(|e| panic!("mode {} failed: {e}", mode.name()));
        assert!(result.feasible, "mode {}", mode.name());
        // Energy is mode-independent in Table 1 (341 nJ processing) plus
        // communication, which grows with b on the Rem→Sink channel.
        assert!(result.energy_pj > 341_000);
    }
}

/// The mapper is deterministic: identical inputs give identical results.
#[test]
fn mapping_is_deterministic() {
    let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
    let platform = paper_platform();
    let mapper = SpatialMapper::new(MapperConfig::default());
    let a = mapper
        .map(&spec, &platform, &platform.initial_state())
        .unwrap();
    let b = mapper
        .map(&spec, &platform, &platform.initial_state())
        .unwrap();
    assert_eq!(a.mapping, b.mapping);
    assert_eq!(a.energy_pj, b.energy_pj);
    assert_eq!(a.buffers, b.buffers);
}
