//! Cross-crate quality checks: the heuristic against the optimal reference
//! on a seed sweep — the paper's "promising results" claim, quantified.

use rtsm::baselines::{ExhaustiveMapper, GreedyMapper, MappingAlgorithm, SpatialMapper};
use rtsm::platform::TileKind;
use rtsm::workloads::{mesh_platform, synthetic_app, GraphShape, SyntheticConfig};

fn setup(seed: u64) -> (rtsm::app::ApplicationSpec, rtsm::platform::Platform) {
    let spec = synthetic_app(&SyntheticConfig {
        seed,
        n_processes: 5,
        shape: GraphShape::Chain,
        ..SyntheticConfig::default()
    });
    let platform = mesh_platform(
        seed.wrapping_mul(7919),
        4,
        4,
        &[(TileKind::Montium, 4), (TileKind::Arm, 4)],
    );
    (spec, platform)
}

/// The heuristic is never better than the exhaustive optimum, stays within
/// 1.5× of it on every instance, and within 5% on average — the measured
/// "promising results" of the paper's abstract, quantified.
#[test]
fn heuristic_within_factor_of_optimal() {
    let mut compared = 0;
    let mut gap_sum = 0.0f64;
    for seed in 0..8u64 {
        let (spec, platform) = setup(seed);
        let state = platform.initial_state();
        let heuristic = SpatialMapper::default().map(&spec, &platform, &state);
        let optimal = ExhaustiveMapper {
            max_nodes: 400_000,
            ..ExhaustiveMapper::default()
        }
        .map(&spec, &platform, &state);
        if let (Ok(h), Ok(o)) = (heuristic, optimal) {
            assert!(
                h.energy_pj >= o.energy_pj,
                "seed {seed}: heuristic {} below optimum {}?",
                h.energy_pj,
                o.energy_pj
            );
            let ratio = h.energy_pj as f64 / o.energy_pj as f64;
            assert!(
                ratio <= 1.5,
                "seed {seed}: heuristic {} vs optimum {}",
                h.energy_pj,
                o.energy_pj
            );
            compared += 1;
            gap_sum += ratio - 1.0;
        }
    }
    assert!(compared >= 4, "too few comparable instances ({compared})");
    let mean_gap = gap_sum / compared as f64;
    assert!(
        mean_gap <= 0.05,
        "mean optimality gap {:.1}% exceeds 5% over {compared} instances",
        mean_gap * 100.0
    );
}

/// Step 2 never hurts: the full heuristic's communication cost is at most
/// the greedy (step-1-only) cost on every instance where both map.
#[test]
fn step2_monotonically_improves_communication() {
    for seed in 0..12u64 {
        let (spec, platform) = setup(seed);
        let state = platform.initial_state();
        let full = SpatialMapper::default().map(&spec, &platform, &state);
        let greedy = GreedyMapper.map(&spec, &platform, &state);
        if let (Ok(f), Ok(g)) = (full, greedy) {
            assert!(
                f.communication_hops <= g.communication_hops,
                "seed {seed}: step 2 made communication worse ({} > {})",
                f.communication_hops,
                g.communication_hops
            );
        }
    }
}

/// Whenever the exhaustive search finds any feasible mapping, the heuristic
/// (with refinement) finds one too on this suite — the run-time algorithm
/// does not miss admissible applications.
#[test]
fn heuristic_admits_when_optimal_exists() {
    for seed in 0..8u64 {
        let (spec, platform) = setup(seed);
        let state = platform.initial_state();
        let optimal = ExhaustiveMapper {
            max_nodes: 400_000,
            ..ExhaustiveMapper::default()
        }
        .map(&spec, &platform, &state);
        if optimal.is_ok() {
            assert!(
                SpatialMapper::default()
                    .map(&spec, &platform, &state)
                    .is_ok(),
                "seed {seed}: heuristic missed a feasible instance"
            );
        }
    }
}
