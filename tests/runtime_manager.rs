//! Lifecycle properties of the handle-based [`RuntimeManager`]: admission
//! commits are exactly inverted by stops, and no sequence of starts and
//! stops leaks a single claim from the shared occupancy ledger.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rtsm::core::{
    AdmissionError, AppHandle, MappingConstraints, RuntimeError, RuntimeManager, SpatialMapper,
};
use rtsm::platform::TileKind;
use rtsm::workloads::{mesh_platform, synthetic_app, GraphShape, SyntheticConfig};

fn manager(seed: u64) -> RuntimeManager<SpatialMapper> {
    let platform = mesh_platform(
        seed ^ 0x51AB,
        4,
        4,
        &[(TileKind::Montium, 4), (TileKind::Arm, 5)],
    );
    RuntimeManager::new(platform, SpatialMapper::default())
}

fn app(seed: u64, n_processes: usize) -> rtsm::app::ApplicationSpec {
    synthetic_app(&SyntheticConfig {
        seed,
        n_processes,
        shape: GraphShape::Chain,
        ..SyntheticConfig::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `start` followed by `stop` restores the exact prior `PlatformState`:
    /// commit and release are inverse operations through the manager, for
    /// every admissible synthetic application.
    #[test]
    fn start_stop_restores_exact_prior_state(seed in 0u64..300) {
        let mut m = manager(seed);
        let before = m.state().clone();
        match m.start(app(seed, 4)) {
            Ok(handle) => {
                prop_assert!(m.state() != &before, "admission must claim resources");
                m.stop(handle).expect("running application stops");
                prop_assert!(
                    m.state() == &before,
                    "stop must restore the exact pre-start ledger (seed {seed})"
                );
            }
            Err(AdmissionError::Rejected(_)) => {
                // Rejection must leave the ledger untouched too.
                prop_assert!(m.state() == &before);
            }
            Err(other) => prop_assert!(false, "unexpected error: {other}"),
        }
    }

    /// Churn: a randomized interleaving of starts and stops never leaks a
    /// claim — once everything is stopped, the ledger is exactly the empty
    /// initial state, and the running set matches the bookkeeping.
    #[test]
    fn randomized_churn_never_leaks_claims(seed in 0u64..60) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = manager(seed);
        let empty = m.state().clone();
        let mut live: Vec<AppHandle> = Vec::new();
        let mut app_seed = seed;

        for _ in 0..24 {
            let start = live.is_empty() || rng.random_bool(0.6);
            if start {
                app_seed += 1;
                let n = rng.random_range(2usize..=5);
                match m.start(app(app_seed, n)) {
                    Ok(handle) => live.push(handle),
                    Err(AdmissionError::Rejected(_)) => {}
                    Err(other) => prop_assert!(false, "unexpected error: {other}"),
                }
            } else {
                let victim = live.swap_remove(rng.random_range(0usize..live.len()));
                m.stop(victim).expect("live handle stops");
            }
            prop_assert!(m.n_running() == live.len());
            // Utilization stays within the platform's physical capacity.
            let util = m.utilization();
            prop_assert!(util.used_slots <= util.total_slots);
            prop_assert!(util.used_memory_bytes <= util.total_memory_bytes);
            prop_assert!(util.used_link_bandwidth <= util.total_link_bandwidth);
        }

        // Drain: stopping everything must restore the pristine ledger.
        for handle in live.drain(..) {
            m.stop(handle).expect("live handle stops");
        }
        prop_assert!(m.n_running() == 0);
        prop_assert!(
            m.state() == &empty,
            "ledger leaked claims after full drain (seed {seed})"
        );
        let util = m.utilization();
        prop_assert!(util.used_slots == 0);
        prop_assert!(util.used_memory_bytes == 0);
        prop_assert!(util.used_link_bandwidth == 0);
    }
}

/// Stale handles are rejected with `UnknownHandle` and leave both the
/// ledger and the running set untouched.
#[test]
fn stale_handles_fail_cleanly() {
    let mut m = manager(1);
    let h0 = m.start(app(11, 3)).expect("empty platform admits");
    m.stop(h0).expect("stop once");
    let snapshot = m.state().clone();
    let running_before = m.n_running();
    assert!(matches!(
        m.stop(h0),
        Err(RuntimeError::UnknownHandle(stale)) if stale == h0
    ));
    assert_eq!(m.state(), &snapshot);
    assert_eq!(m.n_running(), running_before);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Churn plus forced-to-fail remaps: a remap whose constraints exclude
    /// every tile must roll back to the *exact* ledger — claims, buffer
    /// memory, and allocated routes — and the app must keep functioning
    /// (it still stops cleanly at drain time).
    #[test]
    fn churned_remap_rollback_restores_state_and_routes(seed in 0u64..40) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xDEFA6);
        let mut m = manager(seed);
        let empty = m.state().clone();
        let unsatisfiable = {
            // Excluding every tile leaves any remap nowhere to go.
            let mut c = MappingConstraints::none();
            for (tile, _) in m.platform().clone().tiles() {
                c = c.exclude_tile(tile);
            }
            c
        };
        let mut live: Vec<AppHandle> = Vec::new();
        let mut app_seed = seed;

        for _ in 0..16 {
            let action = rng.random_range(0usize..3);
            if live.is_empty() || action == 0 {
                app_seed += 1;
                match m.start(app(app_seed, rng.random_range(2usize..=4))) {
                    Ok(handle) => live.push(handle),
                    Err(AdmissionError::Rejected(_)) => {}
                    Err(other) => prop_assert!(false, "unexpected error: {other}"),
                }
            } else if action == 1 {
                let victim = live.swap_remove(rng.random_range(0usize..live.len()));
                m.stop(victim).expect("live handle stops");
            } else {
                // Induced remap failure: ledger and record must not move.
                let target = live[rng.random_range(0usize..live.len())];
                let ledger = m.state().clone();
                let record = m.get(target).expect("live handle").clone();
                let err = m.remap(target, &unsatisfiable).expect_err("cannot satisfy");
                prop_assert!(matches!(err, RuntimeError::Admission(_)));
                prop_assert!(
                    m.state() == &ledger,
                    "failed remap must restore the exact ledger (seed {seed})"
                );
                prop_assert!(
                    m.get(target) == Some(&record),
                    "failed remap must keep the old mapping and routes (seed {seed})"
                );
            }
        }

        for handle in live.drain(..) {
            m.stop(handle).expect("live handle stops");
        }
        prop_assert!(
            m.state() == &empty,
            "ledger leaked claims after churn with failed remaps (seed {seed})"
        );
    }
}
