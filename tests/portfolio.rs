//! The `PortfolioMapper` acceptance properties, cross-crate:
//!
//! * **portfolio ≤ best member, per admission** (property test): on every
//!   registered catalog, at the default (equal) modeled latency budget,
//!   every arrival the portfolio blocks is replayed through each
//!   standalone member on the identical platform state and must be
//!   unmappable by all of them. This is the state-for-state form of
//!   "portfolio blocking never exceeds the best single member's" —
//!   whole-trajectory blocking comparisons diverge as soon as one
//!   admission differs, so the gate holds where the comparison is
//!   actually like for like.
//! * **racing determinism**: the fixed-seed portfolio `SimReport` is
//!   byte-identical whether members race on 1 worker or several — the
//!   worker count may only change wall-clock, never a report byte.
//! * **template-library composition**: `TemplatedMapper<PortfolioMapper>`
//!   seeds, hits, and keeps the portfolio's display name.

use proptest::prelude::*;
use rtsm::app::ApplicationSpec;
use rtsm::baselines::{default_members, PortfolioMapper, PortfolioMember};
use rtsm::core::{MapError, MappingAlgorithm, MappingConstraints, MappingOutcome, TemplatedMapper};
use rtsm::exp::{resolve_catalog, VALID_CATALOGS};
use rtsm::platform::paper::paper_platform;
use rtsm::platform::{Platform, PlatformState};
use rtsm::sim::{run_sim, SimConfig};
use std::cell::Cell;

/// Delegates mapping to the portfolio (so the simulated trajectory is
/// exactly the portfolio's) and, on every blocked admission, replays all
/// standalone members against the same platform state, counting blocks
/// any member could have recovered.
struct MemberCoverage<'a> {
    portfolio: PortfolioMapper,
    members: &'a [PortfolioMember],
    recoverable_blocks: Cell<u64>,
}

impl MappingAlgorithm for MemberCoverage<'_> {
    fn name(&self) -> &str {
        self.portfolio.name()
    }

    fn map_constrained(
        &self,
        spec: &ApplicationSpec,
        platform: &Platform,
        base: &PlatformState,
        constraints: &MappingConstraints,
    ) -> Result<MappingOutcome, MapError> {
        let result = self
            .portfolio
            .map_constrained(spec, platform, base, constraints);
        if result.is_err() {
            let recovered = self.members.iter().any(|member| {
                (member.build)()
                    .map_constrained(spec, platform, base, constraints)
                    .is_ok()
            });
            if recovered {
                self.recoverable_blocks
                    .set(self.recoverable_blocks.get() + 1);
            }
        }
        result
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// On every catalog, under randomized arrival sequences, the
    /// portfolio blocks an arrival only when *every* standalone member
    /// also fails on the identical platform state.
    #[test]
    fn portfolio_blocks_only_what_every_member_blocks(
        catalog_ix in 0usize..VALID_CATALOGS.len(),
        seed in 0u64..10_000,
    ) {
        let resolved = resolve_catalog(VALID_CATALOGS[catalog_ix], 42)
            .expect("registered catalog");
        let members = default_members();
        let gated = MemberCoverage {
            portfolio: PortfolioMapper::default(),
            members: &members,
            recoverable_blocks: Cell::new(0),
        };
        let config = SimConfig {
            seed,
            arrivals: 40,
            ..SimConfig::default()
        };
        let run = run_sim(&resolved.platform, &gated, &resolved.catalog, &config)
            .expect("the simulation never breaks its own ledger");
        prop_assert!(run.report.blocked + run.report.admitted > 0);
        prop_assert_eq!(
            gated.recoverable_blocks.get(),
            0,
            "portfolio blocked an arrival a member could map on `{}` (seed {})",
            VALID_CATALOGS[catalog_ix],
            seed
        );
    }
}

/// The worker count of the racing pool is pure wall-clock: the same
/// fixed-seed simulation serializes byte-identically at 1, 3, and 8
/// workers.
#[test]
fn fixed_seed_portfolio_reports_are_byte_identical_across_racing_workers() {
    let reports: Vec<String> = [1usize, 3, 8]
        .iter()
        .map(|&workers| {
            let resolved = resolve_catalog("mixed", 42).expect("registered catalog");
            let config = SimConfig {
                seed: 2008,
                arrivals: 100,
                ..SimConfig::default()
            };
            let run = run_sim(
                &resolved.platform,
                PortfolioMapper::with_workers(workers),
                &resolved.catalog,
                &config,
            )
            .expect("the simulation never breaks its own ledger");
            serde_json::to_string(&run.report).expect("reports serialize")
        })
        .collect();
    assert_eq!(reports[0], reports[1], "1 vs 3 workers");
    assert_eq!(reports[0], reports[2], "1 vs 8 workers");
}

/// The portfolio composes with the design-time template library: the
/// first admission of a spec seeds and learns a shape, a repeat admission
/// on the same state is a template hit, and the wrapper keeps the
/// portfolio's display name so reports stay comparable.
#[test]
fn portfolio_composes_with_the_template_library() {
    use rtsm::app::hiperlan2::{hiperlan2_receiver, Hiperlan2Mode};

    let platform = paper_platform();
    let base = platform.initial_state();
    let templated = TemplatedMapper::new(PortfolioMapper::default());
    assert_eq!(templated.name(), "portfolio (budget-raced)");

    let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
    let first = templated
        .map(&spec, &platform, &base)
        .expect("feasible on the empty platform");
    assert!(first.feasible);
    let after_first = templated.stats();
    assert!(after_first.seeded >= 1, "first arrival seeds the library");

    let second = templated
        .map(&spec, &platform, &base)
        .expect("still feasible on the empty platform");
    assert!(second.feasible);
    let after_second = templated.stats();
    assert!(
        after_second.hits > after_first.hits,
        "repeat admission on the same state must hit the template library"
    );
}
