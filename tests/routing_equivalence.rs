//! Property tests pinning the optimised routing hot path to a naive
//! reference implementation.
//!
//! The platform layer routes through a precomputed CSR adjacency table
//! with reusable, generation-stamped scratch buffers
//! ([`RouteScratch`](rtsm::platform::RouteScratch)). These tests re-derive
//! every route with a straightforward textbook Dijkstra (hash-map edge
//! lookups, fresh allocations, `Option<Coord>` predecessors — the shape of
//! the pre-optimisation code) and require byte-identical results: same
//! routers, same links, same tie-breaks, same errors — across random mesh
//! sizes, random link occupancies, random demands, and scratch reuse.

use proptest::prelude::*;
use rtsm::platform::routing::{route_with, route_xy_with, RouteScratch};
use rtsm::platform::{
    Coord, Path, Platform, PlatformBuilder, PlatformError, PlatformState, TileId, TileKind,
};
use std::collections::BinaryHeap;

/// The naive reference router: minimal-hop Dijkstra with deterministic
/// `(cost, coord)` tie-breaks, resolving edges through
/// [`Platform::link_between`] and allocating everything fresh.
fn reference_route(
    platform: &Platform,
    state: &PlatformState,
    from: TileId,
    to: TileId,
    demand: u64,
) -> Result<Path, PlatformError> {
    let no_route = || PlatformError::NoRoute { from, to, demand };
    if state.residual_injection(platform, from) < demand
        || state.residual_ejection(platform, to) < demand
    {
        return Err(no_route());
    }
    let start = platform.tile(from).position;
    let goal = platform.tile(to).position;
    if start == goal {
        return Ok(Path {
            from,
            to,
            routers: vec![start],
            links: Vec::new(),
            demand,
        });
    }
    let index = |c: Coord| (c.y as usize) * (platform.width() as usize) + c.x as usize;
    let n = (platform.width() as usize) * (platform.height() as usize);
    let mut best: Vec<u32> = vec![u32::MAX; n];
    let mut prev: Vec<Option<Coord>> = vec![None; n];
    let mut heap: BinaryHeap<std::cmp::Reverse<(u32, (u16, u16))>> = BinaryHeap::new();
    best[index(start)] = 0;
    heap.push(std::cmp::Reverse((0, (start.x, start.y))));
    while let Some(std::cmp::Reverse((cost, (x, y)))) = heap.pop() {
        let here = Coord { x, y };
        if cost > best[index(here)] {
            continue;
        }
        if here == goal {
            break;
        }
        for next in platform.neighbours(here) {
            let Some(link) = platform.link_between(here, next) else {
                continue;
            };
            if state.residual_link(platform, link) < demand {
                continue;
            }
            let ncost = cost + 1;
            if ncost < best[index(next)] {
                best[index(next)] = ncost;
                prev[index(next)] = Some(here);
                heap.push(std::cmp::Reverse((ncost, (next.x, next.y))));
            }
        }
    }
    if best[index(goal)] == u32::MAX {
        return Err(no_route());
    }
    let mut routers = vec![goal];
    let mut cursor = goal;
    while let Some(p) = prev[index(cursor)] {
        routers.push(p);
        cursor = p;
    }
    routers.reverse();
    let links = routers
        .windows(2)
        .map(|w| platform.link_between(w[0], w[1]).expect("adjacent"))
        .collect();
    Ok(Path {
        from,
        to,
        routers,
        links,
        demand,
    })
}

/// The naive reference XY router.
fn reference_route_xy(
    platform: &Platform,
    state: &PlatformState,
    from: TileId,
    to: TileId,
    demand: u64,
) -> Result<Path, PlatformError> {
    let no_route = || PlatformError::NoRoute { from, to, demand };
    if state.residual_injection(platform, from) < demand
        || state.residual_ejection(platform, to) < demand
    {
        return Err(no_route());
    }
    let start = platform.tile(from).position;
    let goal = platform.tile(to).position;
    let mut routers = vec![start];
    let mut cursor = start;
    while cursor.x != goal.x {
        let next = Coord {
            x: if goal.x > cursor.x {
                cursor.x + 1
            } else {
                cursor.x - 1
            },
            y: cursor.y,
        };
        routers.push(next);
        cursor = next;
    }
    while cursor.y != goal.y {
        let next = Coord {
            x: cursor.x,
            y: if goal.y > cursor.y {
                cursor.y + 1
            } else {
                cursor.y - 1
            },
        };
        routers.push(next);
        cursor = next;
    }
    let mut links = Vec::new();
    for w in routers.windows(2) {
        let link = platform.link_between(w[0], w[1]).ok_or_else(no_route)?;
        if state.residual_link(platform, link) < demand {
            return Err(no_route());
        }
        links.push(link);
    }
    Ok(Path {
        from,
        to,
        routers,
        links,
        demand,
    })
}

/// Builds a full `width × height` mesh with an ARM on every router, then
/// loads a pseudo-random subset of links with a pseudo-random fraction of
/// their capacity (deterministic per `occupancy_seed`).
fn occupied_mesh(width: u16, height: u16, occupancy_seed: u64) -> (Platform, PlatformState) {
    let mut builder = PlatformBuilder::mesh(width, height);
    for y in 0..height {
        for x in 0..width {
            builder = builder.tile(format!("t{x}_{y}"), TileKind::Arm, Coord { x, y });
        }
    }
    let platform = builder.build().expect("valid mesh");
    let mut state = platform.initial_state();
    // Cheap deterministic PRNG (splitmix64) — no RNG dependency needed.
    let mut z = occupancy_seed.wrapping_add(0x9E3779B97F4A7C15);
    let mut next = || {
        z = z.wrapping_add(0x9E3779B97F4A7C15);
        let mut v = z;
        v = (v ^ (v >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        v = (v ^ (v >> 27)).wrapping_mul(0x94D049BB133111EB);
        v ^ (v >> 31)
    };
    let links: Vec<_> = platform.links().map(|(id, l)| (id, l.capacity)).collect();
    for (id, capacity) in links {
        // ~50% of links get loaded with 0–100% of their capacity.
        if next() % 2 == 0 {
            let load = next() % (capacity + 1);
            if load > 0 {
                state
                    .allocate_link(&platform, id, load)
                    .expect("within capacity");
            }
        }
    }
    (platform, state)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Scratch-based adaptive routing is byte-identical to the reference —
    /// including which of several equal-length paths wins the tie-break —
    /// and the scratch gives the same answers when reused across queries.
    #[test]
    fn adaptive_route_matches_reference(
        width in 2u16..7,
        height in 2u16..7,
        occupancy_seed in 0u64..1_000,
        from_ix in 0usize..49,
        to_ix in 0usize..49,
        demand in 1u64..200_000_001,
    ) {
        let (platform, state) = occupied_mesh(width, height, occupancy_seed);
        let n = platform.n_tiles();
        let from = platform.tiles().nth(from_ix % n).unwrap().0;
        let to = platform.tiles().nth(to_ix % n).unwrap().0;
        let mut scratch = RouteScratch::new();
        let fast = route_with(&platform, &state, from, to, demand, &mut scratch)
            .cloned();
        let reference = reference_route(&platform, &state, from, to, demand);
        match (&fast, &reference) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "paths must be byte-identical"),
            (Err(_), Err(_)) => {}
            _ => prop_assert!(false, "verdicts differ: {fast:?} vs {reference:?}"),
        }
        // Reuse the same scratch for the reverse query: stale state from
        // the first search must not leak into the second.
        let fast_rev = route_with(&platform, &state, to, from, demand, &mut scratch)
            .cloned();
        let reference_rev = reference_route(&platform, &state, to, from, demand);
        match (&fast_rev, &reference_rev) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "reused scratch must stay exact"),
            (Err(_), Err(_)) => {}
            _ => prop_assert!(false, "verdicts differ on reuse"),
        }
    }

    /// Scratch-based XY routing is byte-identical to the reference.
    #[test]
    fn xy_route_matches_reference(
        width in 2u16..7,
        height in 2u16..7,
        occupancy_seed in 0u64..1_000,
        from_ix in 0usize..49,
        to_ix in 0usize..49,
        demand in 1u64..200_000_001,
    ) {
        let (platform, state) = occupied_mesh(width, height, occupancy_seed);
        let n = platform.n_tiles();
        let from = platform.tiles().nth(from_ix % n).unwrap().0;
        let to = platform.tiles().nth(to_ix % n).unwrap().0;
        let mut scratch = RouteScratch::new();
        let fast = route_xy_with(&platform, &state, from, to, demand, &mut scratch)
            .cloned();
        let reference = reference_route_xy(&platform, &state, from, to, demand);
        match (&fast, &reference) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "XY paths must be byte-identical"),
            (Err(_), Err(_)) => {}
            _ => prop_assert!(false, "verdicts differ: {fast:?} vs {reference:?}"),
        }
    }

    /// Many sequential queries through ONE scratch match fresh-scratch
    /// results — the generation stamps fully isolate searches.
    #[test]
    fn scratch_reuse_never_leaks_state(
        occupancy_seed in 0u64..1_000,
        queries in proptest::collection::vec(0u64..u64::MAX, 1..20),
    ) {
        let (platform, state) = occupied_mesh(6, 6, occupancy_seed);
        let n = platform.n_tiles();
        let mut shared = RouteScratch::new();
        for q in queries {
            // Unpack each query word into endpoints and a demand (the
            // vendored proptest has no tuple strategies).
            let (fi, ti, demand) = (
                (q % 36) as usize,
                ((q >> 8) % 36) as usize,
                (q >> 16) % 50_000_000 + 1,
            );
            let from = platform.tiles().nth(fi % n).unwrap().0;
            let to = platform.tiles().nth(ti % n).unwrap().0;
            let mut fresh = RouteScratch::new();
            let with_shared =
                route_with(&platform, &state, from, to, demand, &mut shared).cloned();
            let with_fresh =
                route_with(&platform, &state, from, to, demand, &mut fresh).cloned();
            match (&with_shared, &with_fresh) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
                (Err(_), Err(_)) => {}
                _ => prop_assert!(false, "shared vs fresh scratch diverged"),
            }
        }
    }
}
